package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"netdecomp/internal/decomp"
	"netdecomp/internal/graph"
	"netdecomp/internal/randx"
)

// --- gate + governor ---

func TestGateImmediateAdmission(t *testing.T) {
	gv := NewGovernor(Options{Decompose: GateConfig{Slots: 2}}, nil)
	rel1, err := gv.Acquire(context.Background(), ClassDecompose)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	rel2, err := gv.Acquire(context.Background(), ClassDecompose)
	if err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	if got := gv.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	rel1()
	rel1() // idempotent
	rel2()
	if got := gv.InFlight(); got != 0 {
		t.Fatalf("InFlight after release = %d, want 0", got)
	}
	st := gv.Snapshot()
	if st.Admitted != 2 || st.Rejected != 0 || st.Queued != 0 {
		t.Fatalf("stats = %+v, want admitted=2 rejected=0 queued=0", st)
	}
}

func TestGateSaturationRejects(t *testing.T) {
	gv := NewGovernor(Options{Decompose: GateConfig{Slots: 1}}, nil)
	rel, err := gv.Acquire(context.Background(), ClassDecompose)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer rel()
	// Slots full, no queue configured: immediate rejection.
	if _, err := gv.Acquire(context.Background(), ClassDecompose); !errors.Is(err, ErrSaturated) {
		t.Fatalf("acquire on full gate: err = %v, want ErrSaturated", err)
	}
	if got := gv.Snapshot().Rejected; got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
}

func TestGateQueueWaitsThenAdmits(t *testing.T) {
	gv := NewGovernor(Options{Decompose: GateConfig{Slots: 1, Queue: 1}}, nil)
	rel, err := gv.Acquire(context.Background(), ClassDecompose)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	admitted := make(chan error, 1)
	go func() {
		rel2, err := gv.Acquire(context.Background(), ClassDecompose)
		if err == nil {
			rel2()
		}
		admitted <- err
	}()
	// The waiter must be parked, not admitted, while the slot is held.
	select {
	case err := <-admitted:
		t.Fatalf("queued acquire resolved early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	rel()
	select {
	case err := <-admitted:
		if err != nil {
			t.Fatalf("queued acquire: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued acquire never admitted after release")
	}
	st := gv.Snapshot()
	if st.Queued != 1 || st.Admitted != 2 {
		t.Fatalf("stats = %+v, want queued=1 admitted=2", st)
	}
}

func TestGateQueueOverflowRejects(t *testing.T) {
	gv := NewGovernor(Options{Decompose: GateConfig{Slots: 1, Queue: 1}}, nil)
	rel, err := gv.Acquire(context.Background(), ClassDecompose)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	queuedErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		_, err := gv.Acquire(ctx, ClassDecompose)
		queuedErr <- err
	}()
	// Wait for the goroutine to occupy the single queue position before
	// probing the overflow path (same-package test: peek at the channel).
	gate := gv.gates[ClassDecompose]
	deadline := time.Now().Add(2 * time.Second)
	for len(gate.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue position never filled")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := gv.Acquire(context.Background(), ClassDecompose); !errors.Is(err, ErrSaturated) {
		t.Fatalf("overflow acquire err = %v, want ErrSaturated", err)
	}
	cancel()
	wg.Wait()
	if err := <-queuedErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued waiter err = %v, want context.Canceled", err)
	}
}

func TestGateUnlimitedClass(t *testing.T) {
	gv := NewGovernor(Options{}, nil) // zero value: everything unlimited
	for i := 0; i < 100; i++ {
		rel, err := gv.Acquire(context.Background(), ClassRegister)
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		defer rel()
	}
	if got := gv.InFlight(); got != 100 {
		t.Fatalf("InFlight = %d, want 100", got)
	}
}

func TestGovernorDegradedWatermark(t *testing.T) {
	gv := NewGovernor(Options{ShedWatermark: 2}, nil)
	relA, _ := gv.Acquire(context.Background(), ClassDecompose)
	relReg, _ := gv.Acquire(context.Background(), ClassRegister)
	if gv.Degraded() {
		t.Fatal("degraded below watermark (register must not count)")
	}
	relB, _ := gv.Acquire(context.Background(), ClassPipeline)
	if !gv.Degraded() {
		t.Fatal("not degraded at watermark: decompose+pipeline = 2")
	}
	st := gv.Snapshot()
	if !st.Degraded || st.HeavyInFlight != 2 || st.InFlight != 3 {
		t.Fatalf("stats = %+v, want degraded heavy=2 inflight=3", st)
	}
	relA()
	if gv.Degraded() {
		t.Fatal("still degraded after dropping below watermark")
	}
	relB()
	relReg()
}

func TestGovernorDrain(t *testing.T) {
	gv := NewGovernor(Options{Decompose: GateConfig{Slots: 1, Queue: 4}}, nil)
	rel, err := gv.Acquire(context.Background(), ClassDecompose)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	// Park a queued waiter that the drain must evict.
	waiterErr := make(chan error, 1)
	go func() {
		_, err := gv.Acquire(context.Background(), ClassDecompose)
		waiterErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	gv.StartDrain()
	gv.StartDrain() // idempotent
	if !gv.Draining() {
		t.Fatal("Draining() false after StartDrain")
	}
	if err := <-waiterErr; !errors.Is(err, ErrDraining) {
		t.Fatalf("queued waiter err = %v, want ErrDraining", err)
	}
	if _, err := gv.Acquire(context.Background(), ClassDecompose); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain acquire err = %v, want ErrDraining", err)
	}
	// Unlimited classes refuse admission during drain too.
	if _, err := gv.Acquire(context.Background(), ClassRegister); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain register err = %v, want ErrDraining", err)
	}
	if n := gv.WaitIdle(20 * time.Millisecond); n != 1 {
		t.Fatalf("WaitIdle with held slot = %d, want 1", n)
	}
	go func() {
		time.Sleep(15 * time.Millisecond)
		rel()
	}()
	if n := gv.WaitIdle(2 * time.Second); n != 0 {
		t.Fatalf("WaitIdle after release = %d, want 0", n)
	}
	if st := gv.Snapshot(); !st.Draining {
		t.Fatalf("snapshot = %+v, want draining", st)
	}
}

// --- deadlines ---

func TestDeadlineResolve(t *testing.T) {
	cases := []struct {
		name      string
		policy    DeadlinePolicy
		requested time.Duration
		want      time.Duration
	}{
		{"zero policy, nothing requested", DeadlinePolicy{}, 0, 0},
		{"zero policy passes request through", DeadlinePolicy{}, 5 * time.Second, 5 * time.Second},
		{"default applies when unrequested", DeadlinePolicy{Default: 2 * time.Second}, 0, 2 * time.Second},
		{"request overrides default", DeadlinePolicy{Default: 2 * time.Second}, time.Second, time.Second},
		{"max clamps request", DeadlinePolicy{Max: 3 * time.Second}, 10 * time.Second, 3 * time.Second},
		{"max clamps unlimited", DeadlinePolicy{Max: 3 * time.Second}, 0, 3 * time.Second},
		{"request under max untouched", DeadlinePolicy{Default: 2 * time.Second, Max: 3 * time.Second}, time.Second, time.Second},
		{"default clamped by max", DeadlinePolicy{Default: 9 * time.Second, Max: 3 * time.Second}, 0, 3 * time.Second},
	}
	for _, tc := range cases {
		if got := tc.policy.Resolve(tc.requested); got != tc.want {
			t.Errorf("%s: Resolve(%v) = %v, want %v", tc.name, tc.requested, got, tc.want)
		}
	}
}

func TestDeadlineContext(t *testing.T) {
	p := DeadlinePolicy{Max: time.Minute}
	ctx, cancel := p.Context(context.Background(), 0)
	defer cancel()
	dl, ok := ctx.Deadline()
	if !ok {
		t.Fatal("clamped context has no deadline")
	}
	if until := time.Until(dl); until > time.Minute || until < 50*time.Second {
		t.Fatalf("deadline %v from now, want ~1m", until)
	}
	// Unlimited policy: cancellable but deadline-free.
	ctx2, cancel2 := DeadlinePolicy{}.Context(context.Background(), 0)
	if _, ok := ctx2.Deadline(); ok {
		t.Fatal("unlimited context has a deadline")
	}
	cancel2()
	if ctx2.Err() == nil {
		t.Fatal("cancel did not propagate")
	}
}

// --- retry ---

func TestRetrySucceedsAfterFailures(t *testing.T) {
	var slept []time.Duration
	calls := 0
	attempts, err := Retry(context.Background(), Backoff{Attempts: 5, Base: 10 * time.Millisecond, Cap: time.Second, Jitter: 0},
		randx.New(1), func(d time.Duration) { slept = append(slept, d) },
		func() error {
			calls++
			if calls < 3 {
				return errors.New("transient")
			}
			return nil
		})
	if err != nil || attempts != 3 {
		t.Fatalf("attempts=%d err=%v, want 3, nil", attempts, err)
	}
	// Jitter 0: exact exponential schedule.
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("slept %v, want %v", slept, want)
		}
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	sentinel := errors.New("still down")
	slept := 0
	attempts, err := Retry(context.Background(), Backoff{Attempts: 4, Base: time.Millisecond, Jitter: 0},
		nil, func(time.Duration) { slept++ },
		func() error { return sentinel })
	if !errors.Is(err, sentinel) || attempts != 4 {
		t.Fatalf("attempts=%d err=%v, want 4, sentinel", attempts, err)
	}
	if slept != 3 {
		t.Fatalf("slept %d times, want 3 (no sleep after final attempt)", slept)
	}
}

func TestRetryDeterministicJitter(t *testing.T) {
	run := func() []time.Duration {
		var slept []time.Duration
		Retry(context.Background(), Backoff{Attempts: 5, Base: 8 * time.Millisecond, Cap: 100 * time.Millisecond, Jitter: 0.5},
			randx.New(42), func(d time.Duration) { slept = append(slept, d) },
			func() error { return errors.New("no") })
		return slept
	}
	a, b := run(), run()
	if len(a) != 4 {
		t.Fatalf("slept %d times, want 4", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
		base := Backoff{Attempts: 5, Base: 8 * time.Millisecond, Cap: 100 * time.Millisecond}.withDefaults().delay(i + 1)
		lo, hi := time.Duration(float64(base)*0.5), time.Duration(float64(base)*1.5)
		if a[i] < lo || a[i] > min(hi, 100*time.Millisecond) {
			t.Fatalf("delay %d = %v outside jitter band [%v, %v]", i, a[i], lo, hi)
		}
	}
}

func TestRetryCapsDelay(t *testing.T) {
	b := Backoff{Attempts: 10, Base: time.Millisecond, Cap: 4 * time.Millisecond, Jitter: 0}.withDefaults()
	if d := b.delay(9); d != 4*time.Millisecond {
		t.Fatalf("delay(9) = %v, want cap 4ms", d)
	}
}

func TestRetryContextAbort(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	attempts, err := Retry(ctx, Backoff{Attempts: 10, Base: time.Millisecond, Jitter: 0},
		nil, func(time.Duration) { cancel() },
		func() error { return errors.New("no") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (aborted during first backoff)", attempts)
	}
}

// --- injector ---

func TestInjectorDeterministic(t *testing.T) {
	cfg := InjectorConfig{Seed: 7, ErrorRate: 0.5}
	run := func() []bool {
		in := NewInjector(cfg)
		runner := in.WrapRunner(func(context.Context, *decomp.Plan, graph.Interface) (*decomp.Partition, error) {
			return nil, nil
		})
		var failed []bool
		for i := 0; i < 64; i++ {
			_, err := runner(context.Background(), nil, nil)
			failed = append(failed, err != nil)
		}
		return failed
	}
	a, b := run(), run()
	sawError, sawOK := false, false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
		sawError = sawError || a[i]
		sawOK = sawOK || !a[i]
	}
	if !sawError || !sawOK {
		t.Fatalf("rate 0.5 over 64 calls produced errors=%v successes=%v, want both", sawError, sawOK)
	}
}

func TestInjectorErrorsWrapErrInjected(t *testing.T) {
	in := NewInjector(InjectorConfig{Seed: 1, ErrorRate: 1})
	runner := in.WrapRunner(func(context.Context, *decomp.Plan, graph.Interface) (*decomp.Partition, error) {
		t.Fatal("next must not run when the error fault fires")
		return nil, nil
	})
	_, err := runner(context.Background(), nil, nil)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected in chain", err)
	}
	if got := in.Stats().Errors; got != 1 {
		t.Fatalf("errors = %d, want 1", got)
	}
}

func TestInjectorPanics(t *testing.T) {
	in := NewInjector(InjectorConfig{Seed: 1, PanicRate: 1})
	runner := in.WrapRunner(func(context.Context, *decomp.Plan, graph.Interface) (*decomp.Partition, error) {
		return nil, nil
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected an injected panic")
		}
		if got := in.Stats().Panics; got != 1 {
			t.Errorf("panics = %d, want 1", got)
		}
	}()
	runner(context.Background(), nil, nil)
}

func TestInjectorLatency(t *testing.T) {
	in := NewInjector(InjectorConfig{Seed: 1, LatencyRate: 1, Latency: 50 * time.Millisecond})
	var slept []time.Duration
	in.SetSleep(func(d time.Duration) { slept = append(slept, d) })
	runner := in.WrapRunner(func(context.Context, *decomp.Plan, graph.Interface) (*decomp.Partition, error) {
		return nil, nil
	})
	if _, err := runner(context.Background(), nil, nil); err != nil {
		t.Fatalf("runner: %v", err)
	}
	if len(slept) != 1 || slept[0] != 50*time.Millisecond {
		t.Fatalf("slept %v, want one 50ms spike", slept)
	}
	if got := in.Stats().Latencies; got != 1 {
		t.Fatalf("latencies = %d, want 1", got)
	}
}

func TestInjectorDisabledIsTransparent(t *testing.T) {
	in := NewInjector(InjectorConfig{Seed: 1, ErrorRate: 1, PanicRate: 1, FlushErrorRate: 1})
	in.SetEnabled(false)
	ran := false
	runner := in.WrapRunner(func(context.Context, *decomp.Plan, graph.Interface) (*decomp.Partition, error) {
		ran = true
		return nil, nil
	})
	if _, err := runner(context.Background(), nil, nil); err != nil || !ran {
		t.Fatalf("disabled injector interfered: ran=%v err=%v", ran, err)
	}
	if err := in.FlushError(); err != nil {
		t.Fatalf("disabled FlushError = %v, want nil", err)
	}
	st := in.Stats()
	if st != (InjectorStats{}) {
		t.Fatalf("stats = %+v, want all zero", st)
	}
	in.SetEnabled(true)
	if err := in.FlushError(); !errors.Is(err, ErrInjected) {
		t.Fatalf("re-enabled FlushError = %v, want ErrInjected", err)
	}
}

func TestInjectorFlushErrorRate(t *testing.T) {
	in := NewInjector(InjectorConfig{Seed: 3, FlushErrorRate: 0.5})
	fails := 0
	for i := 0; i < 200; i++ {
		if err := in.FlushError(); err != nil {
			fails++
		}
	}
	if fails < 60 || fails > 140 {
		t.Fatalf("fails = %d of 200 at rate 0.5, outside sanity band", fails)
	}
	if got := in.Stats().FlushErrors; got != int64(fails) {
		t.Fatalf("stats.FlushErrors = %d, want %d", got, fails)
	}
}
