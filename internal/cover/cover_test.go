package cover

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"netdecomp/internal/gen"
	"netdecomp/internal/graph"
	"netdecomp/internal/randx"
)

func TestCoverValidSmallW(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"gnp":  gen.GnpConnected(randx.New(1), 150, 0.02),
		"grid": gen.Grid(10, 10),
		"tree": gen.RandomTree(randx.New(2), 120),
	}
	for name, g := range graphs {
		for _, w := range []int{0, 1, 2} {
			c, err := Build(g, Options{W: w, K: 4, Seed: 3})
			if err != nil {
				t.Fatalf("%s W=%d: %v", name, w, err)
			}
			if _, err := c.Verify(g); err != nil {
				t.Fatalf("%s W=%d: %v", name, w, err)
			}
			if c.Degree > c.Colors {
				t.Fatalf("%s W=%d: degree %d exceeds colors %d", name, w, c.Degree, c.Colors)
			}
			if c.Degree < 1 {
				t.Fatalf("%s W=%d: degree %d", name, w, c.Degree)
			}
		}
	}
}

func TestCoverBallContainmentExhaustive(t *testing.T) {
	// On a cycle the balls are intervals; check the containment property
	// directly against an independent computation.
	g := gen.Cycle(48)
	w := 2
	c, err := Build(g, Options{W: w, K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Verify(g); err != nil {
		t.Fatal(err)
	}
	// Every vertex appears in at least one set.
	seen := make([]bool, g.N())
	for _, set := range c.Clusters {
		for _, v := range set {
			seen[v] = true
		}
	}
	for v, s := range seen {
		if !s {
			t.Fatalf("vertex %d in no cover set", v)
		}
	}
}

func TestCoverW0IsDecomposition(t *testing.T) {
	g := gen.Grid(8, 8)
	c, err := Build(g, Options{W: 0, K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// W=0 cover sets are exactly the decomposition clusters: disjoint
	// within each color and overall (degree 1).
	if c.Degree != 1 {
		t.Fatalf("W=0 cover degree = %d, want 1", c.Degree)
	}
	if _, err := c.Verify(g); err != nil {
		t.Fatal(err)
	}
}

func TestCoverDeterministic(t *testing.T) {
	g := gen.GnpConnected(randx.New(9), 100, 0.03)
	a, err := Build(g, Options{W: 1, K: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(g, Options{W: 1, K: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Clusters, b.Clusters) {
		t.Fatal("same seed produced different covers")
	}
}

func TestCoverSameColorDisjoint(t *testing.T) {
	// The degree ≤ χ argument rests on same-color expansions staying
	// disjoint; test it directly.
	g := gen.GnpConnected(randx.New(12), 120, 0.025)
	c, err := Build(g, Options{W: 1, K: 3, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	byColor := map[int][]int{} // color -> set indices
	for i, col := range c.Color {
		byColor[col] = append(byColor[col], i)
	}
	for col, idxs := range byColor {
		seen := make(map[int]int)
		for _, ci := range idxs {
			for _, v := range c.Clusters[ci] {
				if prev, dup := seen[v]; dup {
					t.Fatalf("color %d: vertex %d in sets %d and %d", col, v, prev, ci)
				}
				seen[v] = ci
			}
		}
	}
}

func TestCoverValidation(t *testing.T) {
	g := gen.Path(5)
	if _, err := Build(g, Options{W: -1}); err == nil {
		t.Fatal("negative W accepted")
	}
}

func TestPowerGraph(t *testing.T) {
	g := gen.Path(5)
	h, err := power(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Path 0-1-2-3-4 squared: edges between all pairs at distance <= 2.
	if !graph.HasEdge(h, 0, 2) || !graph.HasEdge(h, 1, 3) || graph.HasEdge(h, 0, 3) {
		t.Fatalf("power graph wrong: %v", graph.Edges(h))
	}
	// t=1 returns the graph itself.
	h1, err := power(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != graph.Interface(g) {
		t.Fatal("power(g,1) should be g")
	}
	if _, err := power(g, 0); err == nil {
		t.Fatal("power exponent 0 accepted")
	}
}

func TestExpand(t *testing.T) {
	g := gen.Path(7)
	got := expand(g, []int{3}, 2)
	want := []int{1, 2, 3, 4, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("expand = %v, want %v", got, want)
	}
	if got := expand(g, []int{0, 6}, 0); !reflect.DeepEqual(got, []int{0, 6}) {
		t.Fatalf("expand W=0 = %v", got)
	}
}

func TestCoverFromRegistryAlgorithms(t *testing.T) {
	// The power-graph decomposition can come from any registered
	// algorithm: strong-diameter producers yield fully verifiable covers;
	// the default "" resolves to elkin-neiman and must match it exactly.
	g := gen.GnpConnected(randx.New(7), 150, 0.02)
	for _, algo := range []string{"elkin-neiman", "mpx", "ball-carving"} {
		c, err := Build(g, Options{W: 1, K: 3, Seed: 4, Algorithm: algo})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if _, err := c.Verify(g); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
	def, err := Build(g, Options{W: 1, K: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	en, err := Build(g, Options{W: 1, K: 3, Seed: 4, Algorithm: "elkin-neiman"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def.Clusters, en.Clusters) {
		t.Fatal("default algorithm is not elkin-neiman")
	}
	if _, err := Build(g, Options{W: 1, Algorithm: "no-such"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestCoverCancelled(t *testing.T) {
	g := gen.Grid(8, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildContext(ctx, g, Options{W: 1, K: 3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
