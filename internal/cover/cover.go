// Package cover builds sparse neighborhood covers from strong-diameter
// network decompositions — the application behind the paper's remark that
// "network decompositions are closely related to neighborhood covers,
// which are used extensively for routing [AP92] and synchronization"
// (Section 1.1, citing [ABCP92] for the relationship).
//
// A W-neighborhood cover is a family of vertex sets ("cover clusters")
// such that for every vertex v the ball B(v, W) is entirely contained in
// at least one set. Its quality is measured by its degree (the maximum
// number of sets containing one vertex) and the maximum diameter of its
// sets.
//
// The classical reduction implemented here: build the power graph
// H = G^{2W+1}, compute a strong (2k−2, χ) decomposition of H, and expand
// every cluster by W hops in G. Every ball B(v, W) lies inside the
// expansion of v's own cluster, and because same-color clusters are at
// G-distance ≥ 2W+2 apart, their W-expansions stay disjoint — so the cover
// degree is at most χ.
package cover

import (
	"context"
	"fmt"

	"netdecomp/internal/decomp"
	"netdecomp/internal/graph"
	"netdecomp/internal/session"
)

// Options configures a cover construction.
type Options struct {
	// W is the covered ball radius. W = 0 degenerates to the decomposition
	// itself.
	W int
	// K, C, Seed parameterize the underlying decomposition of the power
	// graph (forced to completion). K defaults to the algorithm's default
	// (⌈ln n⌉ for the randomized algorithms), C to 8.
	K    int
	C    float64
	Seed uint64
	// Algorithm names the registered decomposition algorithm run on the
	// power graph; "" means "elkin-neiman". Any complete partition yields
	// a valid cover (every ball B(v, W) lies inside the W-expansion of
	// v's own cluster); the degree bound Degree ≤ Colors additionally
	// needs a proper supergraph coloring, which every decomposition
	// algorithm provides (MPX does not).
	Algorithm string
	// Session, when non-nil, executes the power-graph decomposition
	// through the given serving session, so repeated cover builds on the
	// same graph and parameters are served from its result cache instead
	// of re-decomposing.
	Session *session.Session
}

// Cover is a W-neighborhood cover with its quality measures.
type Cover struct {
	// W is the covered radius.
	W int
	// Clusters are the cover sets, each sorted ascending.
	Clusters [][]int
	// Color is the decomposition color class each set descends from; sets
	// of equal color are pairwise disjoint.
	Color []int
	// Degree is the maximum number of sets containing one vertex (≤ the
	// decomposition's color count).
	Degree int
	// Colors is the color count of the underlying decomposition.
	Colors int
	// Rounds is the round cost of the underlying decomposition, scaled by
	// the 2W+1 slowdown of simulating one power-graph round on G.
	Rounds int
}

// Build constructs a W-neighborhood cover of g.
func Build(g graph.Interface, o Options) (*Cover, error) {
	return BuildContext(context.Background(), g, o)
}

// BuildContext is Build with cancellation: ctx is threaded into the
// power-graph decomposition, whatever registered algorithm runs it.
func BuildContext(ctx context.Context, g graph.Interface, o Options) (*Cover, error) {
	if o.W < 0 {
		return nil, fmt.Errorf("cover: W must be non-negative, got %d", o.W)
	}
	if o.C == 0 {
		o.C = 8
	}
	algorithm := o.Algorithm
	if algorithm == "" {
		algorithm = "elkin-neiman"
	}
	pl, err := decomp.Compile(algorithm,
		decomp.WithK(o.K),
		decomp.WithC(o.C),
		decomp.WithSeed(o.Seed),
		decomp.WithForceComplete(),
	)
	if err != nil {
		return nil, fmt.Errorf("cover: %w", err)
	}
	h, err := power(g, 2*o.W+1)
	if err != nil {
		return nil, err
	}
	var p *decomp.Partition
	if o.Session != nil {
		p, err = o.Session.Run(ctx, pl, h)
	} else {
		p, err = pl.Run(ctx, h)
	}
	if err != nil {
		return nil, fmt.Errorf("cover: decomposing power graph: %w", err)
	}
	c := &Cover{
		W:        o.W,
		Clusters: make([][]int, 0, len(p.Clusters)),
		Color:    make([]int, 0, len(p.Clusters)),
		Colors:   p.Colors,
		Rounds:   p.Metrics.Rounds * (2*o.W + 1),
	}
	count := make([]int, g.N())
	for i := range p.Clusters {
		expanded := expand(g, p.Clusters[i].Members, o.W)
		c.Clusters = append(c.Clusters, expanded)
		c.Color = append(c.Color, p.Clusters[i].Color)
		for _, v := range expanded {
			count[v]++
			if count[v] > c.Degree {
				c.Degree = count[v]
			}
		}
	}
	return c, nil
}

// power returns G^t: same vertices, an edge between every pair at distance
// at most t in g. t must be at least 1. For t == 1 it returns g itself (a
// zero-copy pass-through).
func power(g graph.Interface, t int) (graph.Interface, error) {
	if t < 1 {
		return nil, fmt.Errorf("cover: power exponent must be >= 1, got %d", t)
	}
	if t == 1 {
		return g, nil
	}
	b := graph.NewBuilder(g.N())
	for v := 0; v < g.N(); v++ {
		dist := graph.BFSWithin(g, v, t)
		for w, d := range dist {
			if d > 0 && v < w {
				b.AddEdge(v, w)
			}
		}
	}
	return b.Build(), nil
}

// expand returns the union of W-balls around the members, sorted.
func expand(g graph.Interface, members []int, w int) []int {
	if w == 0 {
		out := make([]int, len(members))
		copy(out, members)
		return out
	}
	in := make(map[int]bool, len(members)*4)
	for _, v := range members {
		dist := graph.BFSWithin(g, v, w)
		for u, d := range dist {
			if d >= 0 {
				in[u] = true
			}
		}
	}
	out := make([]int, 0, len(in))
	for u := range in {
		out = append(out, u)
	}
	insertionSort(out)
	return out
}

// insertionSort sorts small slices in place.
func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// Verify checks the covering property — every ball B(v, W) inside some
// cover set — and returns the maximum strong diameter over the sets. It
// returns an error describing the first violation found.
func (c *Cover) Verify(g graph.Interface) (maxDiameter int, err error) {
	// Index membership.
	membership := make([]map[int]bool, len(c.Clusters))
	for i, set := range c.Clusters {
		membership[i] = make(map[int]bool, len(set))
		for _, v := range set {
			membership[i][v] = true
		}
	}
	// Which sets contain each vertex (candidates for its ball).
	containing := make([][]int, g.N())
	for i, set := range c.Clusters {
		for _, v := range set {
			containing[v] = append(containing[v], i)
		}
	}
	for v := 0; v < g.N(); v++ {
		dist := graph.BFSWithin(g, v, c.W)
		var ball []int
		for u, d := range dist {
			if d >= 0 {
				ball = append(ball, u)
			}
		}
		found := false
		for _, ci := range containing[v] {
			inside := true
			for _, u := range ball {
				if !membership[ci][u] {
					inside = false
					break
				}
			}
			if inside {
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("cover: ball B(%d,%d) not contained in any cover set", v, c.W)
		}
	}
	for i, set := range c.Clusters {
		d, ok := graph.SubsetStrongDiameter(g, set)
		if !ok {
			return 0, fmt.Errorf("cover: set %d disconnected in induced subgraph", i)
		}
		if d > maxDiameter {
			maxDiameter = d
		}
	}
	return maxDiameter, nil
}
