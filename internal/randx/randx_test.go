package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUint64Deterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at draw %d: %d vs %d", i, got, want)
		}
	}
}

func TestUint64DifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 100 draws", same)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s SplitMix64
	if s.Uint64() == 0 && s.Uint64() == 0 {
		t.Fatal("zero-value generator produced two zero draws")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64OpenRange(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		f := s.Float64Open()
		if f <= 0 || f > 1 {
			t.Fatalf("Float64Open() = %v out of (0,1]", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of %d uniform draws = %v, want about 0.5", n, mean)
	}
}

func TestIntnRangeAndUniformity(t *testing.T) {
	s := New(13)
	const buckets = 10
	const draws = 100000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		v := s.Intn(buckets)
		if v < 0 || v >= buckets {
			t.Fatalf("Intn(%d) = %d out of range", buckets, v)
		}
		counts[v]++
	}
	want := draws / buckets
	for b, c := range counts {
		if math.Abs(float64(c-want)) > 0.1*float64(want) {
			t.Fatalf("bucket %d has %d draws, want about %d", b, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(17)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := New(19)
	p := []int{0, 1, 2, 3, 4, 5, 6, 7}
	s.Shuffle(p)
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			t.Fatalf("Shuffle produced non-permutation %v", p)
		}
		seen[v] = true
	}
}

func TestMixIndependence(t *testing.T) {
	// Streams derived for adjacent vertex ids must not be correlated in the
	// crudest sense: their first outputs should all differ.
	seen := make(map[uint64]bool)
	for v := uint64(0); v < 1000; v++ {
		x := Derive(99, v, 3).Uint64()
		if seen[x] {
			t.Fatalf("derived stream collision at vertex %d", v)
		}
		seen[x] = true
	}
}

func TestMixOrderMatters(t *testing.T) {
	if Mix(1, 2, 3) == Mix(1, 3, 2) {
		t.Fatal("Mix must distinguish identifier order")
	}
	if Mix(1, 2) == Mix(2, 1) {
		t.Fatal("Mix must distinguish seed from identifier")
	}
}

func TestDeriveDeterministic(t *testing.T) {
	a := Derive(5, 10, 20)
	b := Derive(5, 10, 20)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Derive is not deterministic")
		}
	}
}

func TestExpMeanAndVariance(t *testing.T) {
	// Exp(beta) has mean 1/beta and variance 1/beta^2.
	for _, beta := range []float64{0.25, 1.0, 2.5} {
		s := New(23)
		const n = 200000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			x := Exp(s, beta)
			if x < 0 {
				t.Fatalf("Exp draw %v is negative", x)
			}
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-1/beta) > 0.03/beta {
			t.Errorf("beta=%v: mean=%v, want about %v", beta, mean, 1/beta)
		}
		if math.Abs(variance-1/(beta*beta)) > 0.1/(beta*beta) {
			t.Errorf("beta=%v: variance=%v, want about %v", beta, variance, 1/(beta*beta))
		}
	}
}

func TestExpTailProbability(t *testing.T) {
	// Pr[X >= x] = exp(-beta x); this memorylessness is exactly what
	// Lemma 1 of the paper integrates over, so test it directly.
	beta := 1.5
	x := 2.0
	s := New(29)
	const n = 300000
	count := 0
	for i := 0; i < n; i++ {
		if Exp(s, beta) >= x {
			count++
		}
	}
	got := float64(count) / n
	want := math.Exp(-beta * x)
	if math.Abs(got-want) > 0.005 {
		t.Fatalf("tail Pr[X>=%v] = %v, want about %v", x, got, want)
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp with beta=0 did not panic")
		}
	}()
	Exp(New(1), 0)
}

func TestTruncGeomDistribution(t *testing.T) {
	// Pr[r=j] = (1-p) p^j for j < maxR, Pr[r=maxR] = p^maxR.
	p := 0.5
	maxR := 4
	s := New(31)
	const n = 200000
	counts := make([]int, maxR+1)
	for i := 0; i < n; i++ {
		r := TruncGeom(s, p, maxR)
		if r < 0 || r > maxR {
			t.Fatalf("TruncGeom out of range: %d", r)
		}
		counts[r]++
	}
	for j := 0; j <= maxR; j++ {
		want := (1 - p) * math.Pow(p, float64(j))
		if j == maxR {
			want = math.Pow(p, float64(maxR))
		}
		got := float64(counts[j]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("Pr[r=%d] = %v, want about %v", j, got, want)
		}
	}
}

func TestTruncGeomZeroCap(t *testing.T) {
	s := New(37)
	for i := 0; i < 100; i++ {
		if r := TruncGeom(s, 0.9, 0); r != 0 {
			t.Fatalf("TruncGeom with maxR=0 returned %d", r)
		}
	}
}

func TestTruncGeomPanicsOnBadP(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("TruncGeom with p=%v did not panic", p)
				}
			}()
			TruncGeom(New(1), p, 3)
		}()
	}
}

func TestBernoulliFrequency(t *testing.T) {
	s := New(41)
	const n = 100000
	count := 0
	for i := 0; i < n; i++ {
		if Bernoulli(s, 0.3) {
			count++
		}
	}
	got := float64(count) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency = %v", got)
	}
}

// TestQuickMixStability: Mix is a pure function of its arguments.
func TestQuickMixStability(t *testing.T) {
	f := func(seed, a, b uint64) bool {
		return Mix(seed, a, b) == Mix(seed, a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIntnInRange: Intn stays in range for arbitrary seeds and sizes.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		v := New(seed).Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickExpNonNegative: all exponential draws are non-negative and finite.
func TestQuickExpNonNegative(t *testing.T) {
	f := func(seed uint64) bool {
		x := Exp(New(seed), 1.0)
		return x >= 0 && !math.IsInf(x, 1) && !math.IsNaN(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkExp(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = Exp(s, 1.0)
	}
}
