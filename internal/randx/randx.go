// Package randx provides the deterministic random-number machinery used by
// every randomized algorithm in this repository.
//
// The distributed algorithms of Elkin–Neiman (PODC 2016), Linial–Saks and
// Miller–Peng–Xu all assign an independent random draw to every vertex in
// every phase. To make runs reproducible (and to make the sequential and the
// goroutine-parallel schedulers of internal/dist produce bit-identical
// results), each vertex derives its own stream from a master seed via a
// mixing function, so the draw for vertex v at phase t never depends on
// scheduling order.
//
// The generator is SplitMix64 (Steele, Lea, Flood; JAVA 8's SplittableRandom
// finalizer), a tiny, fast, well-distributed 64-bit PRNG that is trivially
// seedable from a hash, which is exactly what per-vertex stream derivation
// needs. Only the Go standard library is used.
package randx

import "math"

// golden is the 64-bit golden-ratio increment used by SplitMix64.
const golden = 0x9e3779b97f4a7c15

// SplitMix64 is a deterministic 64-bit pseudo random number generator.
//
// The zero value is a valid generator seeded with 0; use New to seed it
// explicitly. SplitMix64 is not safe for concurrent use; derive one
// generator per goroutine with Derive instead of sharing.
type SplitMix64 struct {
	state uint64
}

// New returns a SplitMix64 generator seeded with seed.
func New(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (s *SplitMix64) Uint64() uint64 {
	s.state += golden
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// State returns the generator's internal state. Together with SetState it
// supports snapshot/replay, which the two-pass graph.FromStream builders
// use to run a generator twice over identical draws.
func (s *SplitMix64) State() uint64 { return s.state }

// SetState rewinds the generator to a state captured with State.
func (s *SplitMix64) SetState(state uint64) { s.state = state }

// Float64 returns a pseudo-random float64 in the half-open interval [0, 1).
func (s *SplitMix64) Float64() float64 {
	// Use the top 53 bits for a uniformly distributed mantissa.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a pseudo-random float64 in the half-open interval
// (0, 1]. It is the natural argument for -ln(u) style inverse-CDF sampling,
// where u = 0 would produce +Inf.
func (s *SplitMix64) Float64Open() float64 {
	return 1 - s.Float64()
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0, matching
// the contract of math/rand.Intn.
func (s *SplitMix64) Intn(n int) int {
	if n <= 0 {
		panic("randx: Intn called with non-positive n")
	}
	// Lemire-style rejection-free modulo reduction would bias for enormous
	// n; plain rejection sampling keeps the draw exactly uniform.
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := s.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Perm returns a pseudo-random permutation of the integers [0, n).
func (s *SplitMix64) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes the integers in p in place.
func (s *SplitMix64) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Mix hash-combines a seed with a sequence of identifiers (for example
// vertex index and phase number) into a new seed. It runs each component
// through the SplitMix64 finalizer so that related inputs (v, v+1, ...)
// produce unrelated streams.
func Mix(seed uint64, ids ...uint64) uint64 {
	h := seed
	for _, id := range ids {
		h += golden
		h ^= id + golden + (h << 6) + (h >> 2)
		z := h
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		h = z ^ (z >> 31)
	}
	return h
}

// Derive returns a fresh generator whose stream is a deterministic function
// of seed and the given identifiers, independent of any other derived
// stream. It is the per-vertex/per-phase stream constructor used throughout
// the algorithms.
func Derive(seed uint64, ids ...uint64) *SplitMix64 {
	return New(Mix(seed, ids...))
}

// Exp samples from the exponential distribution with rate beta, whose
// density is f(x) = beta * exp(-beta*x) for x >= 0. This is the radius
// distribution EXP(beta) of Elkin–Neiman (Section 2) and of the
// Miller–Peng–Xu shifted-shortest-path partition.
//
// Exp panics if beta <= 0: a non-positive rate has no valid density and
// always indicates a caller bug (for instance an out-of-range k in the
// Theorem 1 parameterization).
func Exp(rng *SplitMix64, beta float64) float64 {
	if beta <= 0 {
		panic("randx: Exp called with non-positive rate beta")
	}
	// Inverse CDF: X = -ln(U)/beta with U uniform on (0,1].
	return -math.Log(rng.Float64Open()) / beta
}

// TruncGeom samples the truncated geometric radius distribution used by the
// Linial–Saks decomposition: for 0 <= j <= maxR-1 it returns j with
// probability (1-p)*p^j, and it returns maxR with the remaining mass p^maxR.
// Equivalently, it counts Bernoulli(p) successes before the first failure,
// capped at maxR.
//
// TruncGeom panics if p is outside (0,1) or maxR is negative.
func TruncGeom(rng *SplitMix64, p float64, maxR int) int {
	if p <= 0 || p >= 1 {
		panic("randx: TruncGeom requires 0 < p < 1")
	}
	if maxR < 0 {
		panic("randx: TruncGeom requires maxR >= 0")
	}
	r := 0
	for r < maxR && rng.Float64() < p {
		r++
	}
	return r
}

// Bernoulli returns true with probability p.
func Bernoulli(rng *SplitMix64, p float64) bool {
	return rng.Float64() < p
}
