package dist

import (
	"context"
	"fmt"
	"testing"
)

// benchGossip is the gossip ring sized for engine micro-benchmarks. The
// per-Step work is tiny, so these benches measure pure engine overhead:
// mailbox routing, accounting, and (for the parallel variants) the
// per-round barrier.
func benchGossip(b *testing.B, n, rounds int, o Options) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := newGossip(n, rounds)
		g.log = nil // receipt logging is test instrumentation, not engine cost
		if _, err := Run[words](context.Background(), g, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineSequential(b *testing.B) {
	for _, n := range []int{256, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchGossip(b, n, 32, Options{})
		})
	}
}

func BenchmarkEngineParallel(b *testing.B) {
	for _, n := range []int{256, 4096} {
		for _, workers := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(b *testing.B) {
				benchGossip(b, n, 32, Options{Parallel: true, Workers: workers})
			})
		}
	}
}

func BenchmarkEngineRecordRounds(b *testing.B) {
	benchGossip(b, 1024, 32, Options{RecordRounds: true})
}
