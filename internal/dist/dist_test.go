package dist

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// words is a payload whose CONGEST size is its own value.
type words int

func (w words) Words() int { return int(w) }

// relay is a path program: node 0 emits a token to node 1 in round 0 and
// halts; node i halts after forwarding the token to node i+1. Each node
// records the round in which the token reached it.
type relay struct {
	n          int
	receivedAt []int
}

func newRelay(n int) *relay {
	r := &relay{n: n, receivedAt: make([]int, n)}
	for i := range r.receivedAt {
		r.receivedAt[i] = -1
	}
	return r
}

func (r *relay) NumNodes() int { return r.n }

func (r *relay) Step(node, round int, in []Envelope[words]) ([]Envelope[words], bool) {
	if node == 0 && round == 0 {
		r.receivedAt[0] = 0
		return []Envelope[words]{{From: 0, To: 1, Payload: 1}}, true
	}
	if len(in) == 0 {
		return nil, false
	}
	r.receivedAt[node] = round
	if node == r.n-1 {
		return nil, true
	}
	return []Envelope[words]{{From: node, To: node + 1, Payload: 1}}, true
}

func TestRelayDoubleBuffering(t *testing.T) {
	// A message sent in round r must arrive exactly in round r+1: the token
	// leaves node 0 in round 0 and reaches node i in round i, never earlier.
	const n = 16
	for _, o := range []Options{{}, {Parallel: true, Workers: 4}} {
		p := newRelay(n)
		m, err := Run[words](context.Background(), p, o)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < n; v++ {
			if p.receivedAt[v] != v {
				t.Fatalf("parallel=%v: node %d got the token in round %d, want %d", o.Parallel, v, p.receivedAt[v], v)
			}
		}
		if m.Rounds != n {
			t.Fatalf("parallel=%v: rounds = %d, want %d", o.Parallel, m.Rounds, n)
		}
		if m.Messages != n-1 || m.Words != n-1 || m.MaxMessageWords != 1 {
			t.Fatalf("parallel=%v: metrics %+v, want %d unit messages", o.Parallel, m, n-1)
		}
	}
}

// gossip is a ring program used by the determinism and accounting tests:
// for rounds rounds, every node sends its (node+round)-dependent payload to
// both ring neighbors and logs every payload it receives, then halts.
type gossip struct {
	n, rounds int
	log       [][]words // log[v] = payloads received by v, in arrival order
}

func newGossip(n, rounds int) *gossip {
	return &gossip{n: n, rounds: rounds, log: make([][]words, n)}
}

func (g *gossip) NumNodes() int { return g.n }

func (g *gossip) Step(node, round int, in []Envelope[words]) ([]Envelope[words], bool) {
	if g.log != nil { // the benches disable receipt logging
		for _, env := range in {
			g.log[node] = append(g.log[node], env.Payload)
		}
	}
	if round >= g.rounds {
		return nil, true
	}
	pay := words(1 + (node+round)%4)
	left, right := (node+g.n-1)%g.n, (node+1)%g.n
	return []Envelope[words]{
		{From: node, To: left, Payload: pay},
		{From: node, To: right, Payload: pay},
	}, false
}

func TestSchedulersBitIdentical(t *testing.T) {
	// The parallel scheduler must deliver the same inboxes in the same
	// order as the sequential one, for every worker count.
	const n, rounds = 97, 9 // deliberately not a multiple of the chunk size
	ref := newGossip(n, rounds)
	refM, err := Run[words](context.Background(), ref, Options{RecordRounds: true})
	if err != nil {
		t.Fatal(err)
	}
	for workers := 1; workers <= 8; workers++ {
		g := newGossip(n, rounds)
		m, err := Run[words](context.Background(), g, Options{Parallel: true, Workers: workers, RecordRounds: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(m, refM) {
			t.Fatalf("workers=%d: metrics diverged:\n%+v\nwant\n%+v", workers, m, refM)
		}
		if !reflect.DeepEqual(g.log, ref.log) {
			t.Fatalf("workers=%d: delivered message streams diverged", workers)
		}
	}
}

func TestPerRoundStats(t *testing.T) {
	const n, rounds = 10, 5
	g := newGossip(n, rounds)
	m, err := Run[words](context.Background(), g, Options{RecordRounds: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.PerRound) != m.Rounds {
		t.Fatalf("PerRound has %d entries, want %d", len(m.PerRound), m.Rounds)
	}
	var msgs, wrds int64
	for i, r := range m.PerRound {
		if r.Round != i {
			t.Fatalf("entry %d has round %d", i, r.Round)
		}
		if r.Active != n {
			// Every gossip node steps every round until the common halt.
			t.Fatalf("round %d: active = %d, want %d", i, r.Active, n)
		}
		msgs += r.Messages
		wrds += r.Words
	}
	if msgs != m.Messages || wrds != m.Words {
		t.Fatalf("per-round sums %d/%d don't match totals %d/%d", msgs, wrds, m.Messages, m.Words)
	}
	// Without RecordRounds the breakdown must stay nil.
	m2, err := Run[words](context.Background(), newGossip(n, rounds), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m2.PerRound != nil {
		t.Fatal("PerRound populated without RecordRounds")
	}
}

func TestWordAccounting(t *testing.T) {
	// Payload sizes 1..4 on the gossip ring; MaxMessageWords must be the
	// observed maximum, and Words the exact sum of payload sizes.
	g := newGossip(8, 3)
	m, err := Run[words](context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxMessageWords != 4 {
		t.Fatalf("MaxMessageWords = %d, want 4", m.MaxMessageWords)
	}
	var want int64
	for _, log := range g.log {
		for _, w := range log {
			want += int64(w)
		}
	}
	if m.Words != want {
		t.Fatalf("Words = %d, want delivered sum %d", m.Words, want)
	}
}

// misbehaving emits one malformed envelope from node 0 in round 0.
type misbehaving struct {
	n   int
	env Envelope[words]
}

func (m *misbehaving) NumNodes() int { return m.n }

func (m *misbehaving) Step(node, round int, in []Envelope[words]) ([]Envelope[words], bool) {
	if node == 0 {
		return []Envelope[words]{m.env}, true
	}
	return nil, true
}

func TestMalformedEnvelopesError(t *testing.T) {
	cases := []struct {
		name string
		env  Envelope[words]
		want string
	}{
		{"to-too-large", Envelope[words]{From: 0, To: 5, Payload: 1}, "out-of-range"},
		{"to-negative", Envelope[words]{From: 0, To: -1, Payload: 1}, "out-of-range"},
		{"forged-from", Envelope[words]{From: 3, To: 1, Payload: 1}, "forged"},
	}
	for _, tc := range cases {
		for _, parallel := range []bool{false, true} {
			_, err := Run[words](context.Background(), &misbehaving{n: 4, env: tc.env}, Options{Parallel: parallel})
			if err == nil {
				t.Fatalf("%s (parallel=%v): malformed envelope accepted", tc.name, parallel)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("%s (parallel=%v): error %q does not mention %q", tc.name, parallel, err, tc.want)
			}
		}
	}
}

// stubborn never halts and never sends.
type stubborn struct{ n int }

func (s stubborn) NumNodes() int { return s.n }

func (s stubborn) Step(node, round int, in []Envelope[words]) ([]Envelope[words], bool) {
	return nil, false
}

func TestMaxRoundsAborts(t *testing.T) {
	m, err := Run[words](context.Background(), stubborn{n: 3}, Options{MaxRounds: 20})
	if err == nil {
		t.Fatal("non-terminating program ran forever past MaxRounds")
	}
	if m.Rounds != 20 {
		t.Fatalf("aborted after %d rounds, want 20", m.Rounds)
	}
}

// halter is a 2-node program: node 1 halts immediately; node 0 sends to
// node 1 in round 0 (delivered after the halt) and halts in round 1,
// recording whatever it was stepped with.
type halter struct {
	delivered [][]Envelope[words]
}

func (h *halter) NumNodes() int { return 2 }

func (h *halter) Step(node, round int, in []Envelope[words]) ([]Envelope[words], bool) {
	cp := make([]Envelope[words], len(in))
	copy(cp, in)
	h.delivered = append(h.delivered, cp)
	if node == 1 {
		return nil, true
	}
	if round == 0 {
		return []Envelope[words]{{From: 0, To: 1, Payload: 2}}, false
	}
	return nil, true
}

func TestMessageToHaltedNodeCountedButDropped(t *testing.T) {
	h := &halter{}
	m, err := Run[words](context.Background(), h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The sender pays for the message even though the receiver is gone.
	if m.Messages != 1 || m.Words != 2 {
		t.Fatalf("metrics %+v, want the dropped message accounted", m)
	}
	// Steps: round 0 node 0, round 0 node 1, round 1 node 0 — and none of
	// them may observe the in-flight message addressed to the halted node.
	if len(h.delivered) != 3 {
		t.Fatalf("%d steps executed, want 3", len(h.delivered))
	}
	for i, in := range h.delivered {
		if len(in) != 0 {
			t.Fatalf("step %d observed %d messages, want none", i, len(in))
		}
	}
	if m.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2", m.Rounds)
	}
}

// blocker runs forever, signalling on started once round reaches minRounds,
// so a test can cancel a run that is provably mid-flight.
type blocker struct {
	n         int
	minRounds int
	started   chan struct{}
	once      bool
}

func (b *blocker) NumNodes() int { return b.n }

func (b *blocker) Step(node, round int, in []Envelope[words]) ([]Envelope[words], bool) {
	if node == 0 && round == b.minRounds && !b.once {
		b.once = true
		close(b.started)
	}
	return nil, false
}

func TestContextCancelStopsRun(t *testing.T) {
	// Cancel a non-terminating program mid-flight from another goroutine:
	// the run must stop at the next round barrier and surface ctx.Err().
	ctx, cancel := context.WithCancel(context.Background())
	b := &blocker{n: 4, minRounds: 50, started: make(chan struct{})}
	go func() {
		<-b.started
		cancel()
	}()
	m, err := Run[words](ctx, b, Options{})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if m.Rounds < b.minRounds {
		t.Fatalf("run stopped after %d rounds, before the cancellation point %d", m.Rounds, b.minRounds)
	}
}

func TestContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := Run[words](ctx, newGossip(8, 3), Options{})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if m.Rounds != 0 {
		t.Fatalf("cancelled-before-start run executed %d rounds", m.Rounds)
	}
}

func TestObserverStreamsRounds(t *testing.T) {
	// The observer must see exactly the RecordRounds breakdown, in round
	// order, on both schedulers.
	for _, parallel := range []bool{false, true} {
		var seen []RoundStats
		m, err := Run[words](context.Background(), newGossip(9, 4), Options{
			Parallel:     parallel,
			RecordRounds: true,
			Observer:     func(r RoundStats) { seen = append(seen, r) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seen, m.PerRound) {
			t.Fatalf("parallel=%v: observer stream diverges from PerRound:\n%+v\nwant\n%+v", parallel, seen, m.PerRound)
		}
		for i, r := range seen {
			if r.Round != i {
				t.Fatalf("parallel=%v: observer call %d carried round %d", parallel, i, r.Round)
			}
		}
	}
}

func TestEmptyProgram(t *testing.T) {
	m, err := Run[words](context.Background(), stubborn{n: 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rounds != 0 || m.Messages != 0 {
		t.Fatalf("empty program produced metrics %+v", m)
	}
}
