// Package dist is the synchronous CONGEST message-passing engine of the
// repository: a generic round-based simulator that executes a node program
// on n nodes, delivering each round's messages at the start of the next
// round, until every node halts.
//
// The model is the synchronous message-passing model of Peleg's book (and
// of Elkin–Neiman, PODC 2016): computation proceeds in global rounds; in
// round r every live node receives the messages addressed to it in round
// r−1, updates its local state, and emits a batch of point-to-point
// messages to be delivered in round r+1. Mailboxes are double-buffered, so
// a Step never observes a message sent in its own round.
//
// Delivery is arena-backed: each round's messages live in one flat
// envelope buffer with per-node rows laid out by a two-pass count/fill
// commit, and a compact live-node list keeps every per-round cost —
// stepping, commit, mailbox reset — proportional to the nodes still
// running and the messages actually sent, never to the total node count.
//
// The engine is deliberately algorithm-agnostic. A program implements
//
//	NumNodes() int
//	Step(node, round int, in []Envelope[M]) (out []Envelope[M], halt bool)
//
// for a payload type M that can report its own CONGEST size in words.
// Run drives the program with either a sequential scheduler or a
// deterministic goroutine-pool scheduler (Options.Parallel); because each
// node's outbox is committed in ascending node order regardless of which
// goroutine produced it, both schedulers deliver bit-identical inboxes and
// therefore execute bit-identical runs — the contract internal/randx
// documents and internal/core's equivalence tests assert. Programs must
// keep Step(node, ...) confined to per-node state for the parallel
// scheduler to be safe; the engine takes care of everything shared.
//
// Run accounts CONGEST cost as it goes: total rounds, total messages,
// total words and the largest single message (Metrics), plus an optional
// per-round breakdown (Options.RecordRounds) used by examples/congest and
// experiment T10. A program that emits a malformed envelope (receiver out
// of range, or a forged sender) stops the run with an error rather than a
// panic, so a buggy node program cannot take down a harness process.
package dist

import "netdecomp/internal/obs"

// WordCounter constrains engine payloads: every message type reports its
// own size in machine words, which is what the CONGEST O(1)-words-per-
// message guarantees of the paper are measured against.
type WordCounter interface {
	Words() int
}

// Envelope is one point-to-point message in flight: sent by From during
// some round, delivered to To at the start of the next round.
type Envelope[M WordCounter] struct {
	From    int
	To      int
	Payload M
}

// Program is a synchronous node program executed by Run.
//
// Step is called once per round for every node that has not yet halted.
// in holds exactly the messages addressed to node in the previous round
// (empty — not necessarily nil — in round 0 and whenever nothing arrived,
// so test len(in), not in == nil); the slice is owned by the engine and
// must not be retained across calls. Step returns the node's
// outbox for this round and whether the node halts. A halted node is never
// stepped again; messages addressed to it are still accounted but silently
// dropped, exactly as a real network delivers into a stopped process.
//
// The returned outbox is borrowed by the engine until the end of the
// round's commit, which copies the envelopes into the delivery arena.
// After that the program owns the slice again: Step(node, ...) may reuse
// the same backing array on node's next call (out = buf[node][:0]) instead
// of allocating a fresh outbox every round. The engine never mutates a
// borrowed outbox and never reads it after commit.
//
// For the parallel scheduler to be safe, Step(node, ...) must touch only
// state owned by node (concurrent Step calls always target distinct
// nodes).
type Program[M WordCounter] interface {
	// NumNodes reports the number of nodes; node ids are 0..NumNodes()-1.
	NumNodes() int
	// Step executes one round of one node.
	Step(node, round int, in []Envelope[M]) ([]Envelope[M], bool)
}

// Options configures a Run.
type Options struct {
	// Parallel selects the deterministic goroutine-pool scheduler. Results
	// are bit-identical to the sequential scheduler.
	Parallel bool
	// Workers caps the goroutine pool of the parallel scheduler; 0 or
	// negative means GOMAXPROCS. Ignored unless Parallel is set.
	Workers int
	// RecordRounds enables the per-round statistics in Metrics.PerRound.
	RecordRounds bool
	// MaxRounds aborts the run with an error if some node is still live
	// after this many rounds; 0 means no limit. Callers that can bound the
	// round complexity of their program should set it, turning a
	// non-terminating program bug into an error.
	MaxRounds int
	// Observer, when non-nil, is invoked once per executed round — after
	// the round's messages are committed — with that round's statistics.
	// It streams the same data RecordRounds accumulates, without the
	// memory cost, and is the hook the unified Decomposer API exposes as
	// WithObserver. The callback runs on the engine goroutine: a slow
	// observer slows the run, and it must not call back into the engine.
	Observer func(RoundStats)
	// Recorder, when non-nil, accounts every executed round into the
	// telemetry layer: engine.rounds/messages/words counters, per-round
	// message and active-node histograms, and (when the recorder carries a
	// traced span) one instant trace event per round. It reports the same
	// numbers as RoundStats, into the unified registry instead of a
	// callback. The disabled path is a single nil test per round — the
	// engine stays allocation-free with telemetry off, which
	// BENCH_obs.json records and CI gates.
	Recorder *obs.RoundRecorder
}

// Metrics is the CONGEST account of one Run.
type Metrics struct {
	// Rounds is the number of synchronous rounds executed (a round in
	// which at least one node stepped).
	Rounds int
	// Messages and Words are the total point-to-point messages sent and
	// their total size in words.
	Messages int64
	Words    int64
	// MaxMessageWords is the size of the largest single message, the
	// quantity bounded by the paper's "O(1) words per message" discipline.
	MaxMessageWords int
	// PerRound holds one entry per executed round when
	// Options.RecordRounds is set, else nil.
	PerRound []RoundStats
}

// RoundStats is the traffic of a single round.
type RoundStats struct {
	// Round is the 0-based round index.
	Round int
	// Messages and Words count the traffic sent during the round.
	Messages int64
	Words    int64
	// Active is the number of nodes that stepped in the round (live nodes
	// at the start of the round).
	Active int
}
