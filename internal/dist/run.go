package dist

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// chunk is the unit of work the parallel scheduler hands to a worker: a
// contiguous block of node ids. Chunking amortizes the atomic fetch-add
// across many Step calls while still balancing skewed per-node work.
const chunk = 64

// engine is the per-run state shared by both schedulers.
type engine[M WordCounter] struct {
	p Program[M]
	o Options
	n int

	halted []bool
	live   int

	// cur[v] is v's inbox for the round being executed; nxt[v] collects
	// the messages to deliver next round. The two swap every round, so a
	// Step only ever sees messages sent in the previous round.
	cur, nxt [][]Envelope[M]

	// outs[v] is the outbox Step returned for v this round, committed to
	// nxt in ascending node order so both schedulers route identically.
	outs  [][]Envelope[M]
	halts []bool

	metrics Metrics
}

// Run executes the program until every node has halted and returns the
// CONGEST metrics of the execution. It returns a non-nil error (with the
// metrics accumulated so far) if the program emits a malformed envelope or
// exceeds Options.MaxRounds.
//
// Cancellation is checked at the round barrier: when ctx is done before a
// round starts, the run stops and returns ctx.Err() with the metrics
// accumulated so far. A nil ctx is treated as context.Background().
func Run[M WordCounter](ctx context.Context, p Program[M], o Options) (Metrics, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := p.NumNodes()
	if n < 0 {
		return Metrics{}, fmt.Errorf("dist: program reports %d nodes", n)
	}
	e := &engine[M]{
		p:      p,
		o:      o,
		n:      n,
		halted: make([]bool, n),
		live:   n,
		cur:    make([][]Envelope[M], n),
		nxt:    make([][]Envelope[M], n),
		outs:   make([][]Envelope[M], n),
		halts:  make([]bool, n),
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	for round := 0; e.live > 0; round++ {
		if err := ctx.Err(); err != nil {
			return e.metrics, err
		}
		if o.MaxRounds > 0 && round >= o.MaxRounds {
			return e.metrics, fmt.Errorf("dist: %d of %d nodes still live after the %d-round limit", e.live, n, o.MaxRounds)
		}
		active := e.live
		if o.Parallel && workers > 1 {
			e.stepParallel(round, workers)
		} else {
			e.stepSequential(round)
		}
		if err := e.commit(round, active); err != nil {
			return e.metrics, err
		}
	}
	return e.metrics, nil
}

// stepSequential runs every live node's Step for the round in node order.
func (e *engine[M]) stepSequential(round int) {
	for v := 0; v < e.n; v++ {
		if e.halted[v] {
			continue
		}
		e.outs[v], e.halts[v] = e.p.Step(v, round, e.cur[v])
	}
}

// stepParallel runs the round's Steps on a goroutine pool. Workers claim
// contiguous chunks of node ids off a shared counter; every result lands
// in the stepping node's own slot, so the subsequent ordered commit is
// independent of which worker ran which node — the source of the
// bit-identical contract with the sequential scheduler.
func (e *engine[M]) stepParallel(round, workers int) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(chunk)) - chunk
				if lo >= e.n {
					return
				}
				hi := lo + chunk
				if hi > e.n {
					hi = e.n
				}
				for v := lo; v < hi; v++ {
					if e.halted[v] {
						continue
					}
					e.outs[v], e.halts[v] = e.p.Step(v, round, e.cur[v])
				}
			}
		}()
	}
	wg.Wait()
}

// commit validates and routes the round's outboxes in ascending node
// order, applies halts, accounts the metrics, and swaps the mailbox
// buffers for the next round.
func (e *engine[M]) commit(round, active int) error {
	var msgs, words int64
	for v := 0; v < e.n; v++ {
		if e.halted[v] {
			continue
		}
		for _, env := range e.outs[v] {
			if env.To < 0 || env.To >= e.n {
				return fmt.Errorf("dist: node %d sent a message to out-of-range node %d in round %d (n=%d)", v, env.To, round, e.n)
			}
			if env.From != v {
				return fmt.Errorf("dist: node %d sent a message with forged sender %d in round %d", v, env.From, round)
			}
			w := env.Payload.Words()
			msgs++
			words += int64(w)
			if w > e.metrics.MaxMessageWords {
				e.metrics.MaxMessageWords = w
			}
			// Delivery to an already-halted node is counted (the sender
			// paid for it) but dropped: nothing will step to read it.
			e.nxt[env.To] = append(e.nxt[env.To], env)
		}
		e.outs[v] = nil
		if e.halts[v] {
			e.halted[v] = true
			e.halts[v] = false
			e.live--
		}
	}
	e.metrics.Rounds++
	e.metrics.Messages += msgs
	e.metrics.Words += words
	stats := RoundStats{
		Round:    round,
		Messages: msgs,
		Words:    words,
		Active:   active,
	}
	if e.o.RecordRounds {
		e.metrics.PerRound = append(e.metrics.PerRound, stats)
	}
	if e.o.Observer != nil {
		e.o.Observer(stats)
	}
	// Swap mailboxes; the delivered round's inboxes become next round's
	// (emptied) collection buffers.
	for v := range e.cur {
		e.cur[v] = e.cur[v][:0]
	}
	e.cur, e.nxt = e.nxt, e.cur
	return nil
}
