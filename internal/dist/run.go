package dist

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// chunk is the unit of work the parallel scheduler hands to a worker: a
// contiguous block of live-list positions. Chunking amortizes the atomic
// fetch-add across many Step calls while still balancing skewed per-node
// work.
const chunk = 64

// mailbox is one side of the double-buffered mailboxes: every envelope
// delivered in a round lives in one flat arena, with per-node rows
// addressed by (start, cnt). Rows are laid out by a two-pass count/fill
// commit — the same trick as the CSR graph builder — so a round of any
// traffic costs zero per-node allocations once the arena has grown to its
// high-water mark, and resetting between rounds touches only the nodes
// that actually received something.
type mailbox[M WordCounter] struct {
	arena []Envelope[M]
	start []int64 // per node: fill cursor; one past the row's end after commit
	cnt   []int32 // per node: row length
	// touched lists the nodes with cnt > 0, in first-touch (ascending
	// sender commit) order — the reset set and the row layout order.
	touched []int32
}

func newMailbox[M WordCounter](n int) mailbox[M] {
	return mailbox[M]{start: make([]int64, n), cnt: make([]int32, n)}
}

// inbox returns node v's delivered row. The fill pass leaves start[v] one
// past the row's end, so the row is the cnt[v] envelopes before it. The
// slice is capped: a program appending to its inbox cannot corrupt a
// neighbor's row.
func (mb *mailbox[M]) inbox(v int) []Envelope[M] {
	c := int64(mb.cnt[v])
	if c == 0 {
		return nil
	}
	end := mb.start[v]
	return mb.arena[end-c : end : end]
}

// reset clears last round's rows in O(touched) and recycles the arena.
func (mb *mailbox[M]) reset() {
	for _, v := range mb.touched {
		mb.cnt[v] = 0
	}
	mb.touched = mb.touched[:0]
	mb.arena = mb.arena[:0]
}

// engine is the per-run state shared by both schedulers.
type engine[M WordCounter] struct {
	p Program[M]
	o Options
	n int

	halted []bool
	// live holds the ids of the nodes that have not halted, ascending. It
	// is compacted in place as nodes halt, so stepping, commit and the
	// mailbox machinery never scan halted nodes — a run in which 99% of
	// the nodes halt in round 1 pays for the survivors only from round 2 on.
	live []int32

	// cur holds the inboxes for the round being executed; nxt collects the
	// rows to deliver next round. The two swap every round, so a Step only
	// ever sees messages sent in the previous round.
	cur, nxt mailbox[M]

	// outs[v] is the outbox Step returned for v this round. It is borrowed
	// from the program until commit copies the envelopes into the arena
	// (see Program), committed in ascending node order so both schedulers
	// route identically.
	outs  [][]Envelope[M]
	halts []bool

	metrics Metrics
}

// Run executes the program until every node has halted and returns the
// CONGEST metrics of the execution. It returns a non-nil error (with the
// metrics accumulated so far) if the program emits a malformed envelope or
// exceeds Options.MaxRounds.
//
// Cancellation is checked at the round barrier: when ctx is done before a
// round starts, the run stops and returns ctx.Err() with the metrics
// accumulated so far. A nil ctx is treated as context.Background().
func Run[M WordCounter](ctx context.Context, p Program[M], o Options) (Metrics, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := p.NumNodes()
	if n < 0 {
		return Metrics{}, fmt.Errorf("dist: program reports %d nodes", n)
	}
	e := &engine[M]{
		p:      p,
		o:      o,
		n:      n,
		halted: make([]bool, n),
		live:   make([]int32, n),
		cur:    newMailbox[M](n),
		nxt:    newMailbox[M](n),
		outs:   make([][]Envelope[M], n),
		halts:  make([]bool, n),
	}
	for v := range e.live {
		e.live[v] = int32(v)
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	for round := 0; len(e.live) > 0; round++ {
		if err := ctx.Err(); err != nil {
			return e.metrics, err
		}
		if o.MaxRounds > 0 && round >= o.MaxRounds {
			return e.metrics, fmt.Errorf("dist: %d of %d nodes still live after the %d-round limit", len(e.live), n, o.MaxRounds)
		}
		active := len(e.live)
		if o.Parallel && workers > 1 {
			e.stepParallel(round, workers)
		} else {
			e.stepSequential(round)
		}
		if err := e.commit(round, active); err != nil {
			return e.metrics, err
		}
	}
	return e.metrics, nil
}

// stepSequential runs every live node's Step for the round in node order.
func (e *engine[M]) stepSequential(round int) {
	for _, lv := range e.live {
		v := int(lv)
		e.outs[v], e.halts[v] = e.p.Step(v, round, e.cur.inbox(v))
	}
}

// stepParallel runs the round's Steps on a goroutine pool. Workers claim
// contiguous chunks of live-list positions off a shared counter; every
// result lands in the stepping node's own slot, so the subsequent ordered
// commit is independent of which worker ran which node — the source of the
// bit-identical contract with the sequential scheduler.
func (e *engine[M]) stepParallel(round, workers int) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(chunk)) - chunk
				if lo >= len(e.live) {
					return
				}
				hi := lo + chunk
				if hi > len(e.live) {
					hi = len(e.live)
				}
				for _, lv := range e.live[lo:hi] {
					v := int(lv)
					e.outs[v], e.halts[v] = e.p.Step(v, round, e.cur.inbox(v))
				}
			}
		}()
	}
	wg.Wait()
}

// commit validates and routes the round's outboxes in ascending node
// order, applies halts, accounts the metrics, and swaps the mailbox
// buffers for the next round.
//
// Routing is the two-pass count/fill layout: pass one validates every
// envelope, accounts it and counts each receiver's row; then the rows are
// laid out back to back in one arena (in first-touch order) and pass two
// copies the envelopes in. Because both passes walk senders in ascending
// node order, every receiver sees its messages in exactly the arrival
// order the per-node append mailboxes used to produce.
func (e *engine[M]) commit(round, active int) error {
	var msgs, words int64
	nxt := &e.nxt
	for _, lv := range e.live {
		v := int(lv)
		for i := range e.outs[v] {
			env := &e.outs[v][i]
			if env.To < 0 || env.To >= e.n {
				return fmt.Errorf("dist: node %d sent a message to out-of-range node %d in round %d (n=%d)", v, env.To, round, e.n)
			}
			if env.From != v {
				return fmt.Errorf("dist: node %d sent a message with forged sender %d in round %d", v, env.From, round)
			}
			w := env.Payload.Words()
			msgs++
			words += int64(w)
			if w > e.metrics.MaxMessageWords {
				e.metrics.MaxMessageWords = w
			}
			// Delivery to an already-halted node is counted (the sender
			// paid for it) but its row is simply never read.
			if nxt.cnt[env.To] == 0 {
				nxt.touched = append(nxt.touched, int32(env.To))
			}
			nxt.cnt[env.To]++
		}
	}
	if int64(cap(nxt.arena)) < msgs {
		nxt.arena = make([]Envelope[M], msgs)
	} else {
		nxt.arena = nxt.arena[:msgs]
	}
	off := int64(0)
	for _, tv := range nxt.touched {
		nxt.start[tv] = off
		off += int64(nxt.cnt[tv])
	}
	for _, lv := range e.live {
		v := int(lv)
		for _, env := range e.outs[v] {
			nxt.arena[nxt.start[env.To]] = env
			nxt.start[env.To]++
		}
		// The borrow ends here: the program may reuse the outbox's backing
		// array from its next Step on. The stale reference is overwritten
		// by that Step (or dropped below on halt).
	}
	k := 0
	for _, lv := range e.live {
		v := int(lv)
		if e.halts[v] {
			e.halted[v] = true
			e.halts[v] = false
			e.outs[v] = nil
		} else {
			e.live[k] = lv
			k++
		}
	}
	e.live = e.live[:k]
	e.metrics.Rounds++
	e.metrics.Messages += msgs
	e.metrics.Words += words
	stats := RoundStats{
		Round:    round,
		Messages: msgs,
		Words:    words,
		Active:   active,
	}
	if e.o.RecordRounds {
		e.metrics.PerRound = append(e.metrics.PerRound, stats)
	}
	if e.o.Observer != nil {
		e.o.Observer(stats)
	}
	e.o.Recorder.Record(round, msgs, words, active)
	// Swap mailboxes; the delivered round's rows become next round's
	// (recycled) arena.
	e.cur.reset()
	e.cur, e.nxt = e.nxt, e.cur
	return nil
}
