// Package pipeline is the typed DAG orchestration layer over compiled
// decomposition plans: the chains the paper's applications imply
// (decompose → recolor → MIS, decompose → spanner, cover, ...) become one
// validated pipeline instead of N hand-sequenced calls.
//
// A pipeline is built fluently and validated structurally at Build time —
// unique stage IDs, edges between existing stages, acyclicity (Kahn's
// algorithm), and *typed* data dependencies: every stage kind declares
// what value kinds it consumes and produces, and an edge whose producer
// cannot feed its consumer is a build error, not a runtime surprise.
//
//	p, err := pipeline.NewBuilder().
//	    AddStage("dec", pipeline.Decompose(plan)).
//	    AddStage("re", pipeline.Recolor()).
//	    AddStage("mis", pipeline.MIS()).
//	    AddStage("sp", pipeline.Spanner()).
//	    AddEdge("dec", "re").
//	    AddEdge("re", "mis").
//	    AddEdge("dec", "sp").
//	    Build()
//	res, err := pipeline.Run(ctx, p, g, pipeline.WithSession(sess))
//
// The Executor runs stages level-parallel: all stages of one DAG level
// execute concurrently under a worker cap, dispatched in sorted stage-ID
// order so the execution schedule is deterministic, and results are
// bit-identical for any worker count (stages only communicate through
// their declared edges). Every decompose stage rides the serving session
// when one is attached: a pipeline re-run after one upstream change is
// served from the result cache everywhere the inputs are unchanged and
// recomputes only the stages downstream of the change — cache hits
// short-circuit whole subtrees. Per-stage spans and latency histograms
// land in the attached telemetry recorder, and a stage-completion
// observer streams progress as the DAG executes (the SSE feed of
// POST /v1/pipeline/stream).
package pipeline

import (
	"context"
	"fmt"

	"netdecomp/internal/apps"
	"netdecomp/internal/cover"
	"netdecomp/internal/decomp"
	"netdecomp/internal/graph"
	"netdecomp/internal/spanner"
)

// Kind identifies the value type a stage produces — the type system of
// the DAG's edges.
type Kind int

const (
	// KindPartition is a decomposition result (*decomp.Partition).
	KindPartition Kind = iota
	// KindAppInput is a recolored application input (apps.Input).
	KindAppInput
	// KindMIS, KindColoring, KindMatching are the symmetry-breaking
	// application results.
	KindMIS
	KindColoring
	KindMatching
	// KindSpanner is a sparse skeleton (*spanner.Spanner). Spanner values
	// are graph-valued: a downstream decompose or cover stage consumes the
	// skeleton graph.
	KindSpanner
	// KindCover is a neighborhood cover (*cover.Cover).
	KindCover
)

// String returns the kind's stage-constructor name.
func (k Kind) String() string {
	switch k {
	case KindPartition:
		return "decompose"
	case KindAppInput:
		return "recolor"
	case KindMIS:
		return "mis"
	case KindColoring:
		return "coloring"
	case KindMatching:
		return "matching"
	case KindSpanner:
		return "spanner"
	case KindCover:
		return "cover"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// graphValued reports whether a value of this kind can feed a stage that
// consumes a graph (decompose, cover).
func (k Kind) graphValued() bool { return k == KindSpanner }

// value is one stage's produced value plus the graph it is relative to —
// the context a downstream stage needs (apps.FromPartition and
// spanner.Build take the graph the partition was computed on; a spanner's
// graph is the skeleton itself, so decompose-of-spanner chains compose).
type value struct {
	kind Kind
	g    graph.Interface
	part *decomp.Partition
	in   *apps.Input
	mis  *apps.MISResult
	col  *apps.ColoringResult
	mat  *apps.MatchingResult
	span *spanner.Spanner
	cov  *cover.Cover
}

// Stage is one DAG node: a compiled decomposition plan or a
// derived-structure builder. The stage set is closed (the run method is
// unexported); construct stages with Decompose, Recolor, MIS, Coloring,
// Matching, Spanner and Cover.
type Stage interface {
	// Kind is the value kind the stage produces.
	Kind() Kind
	// arity is the accepted in-edge count range.
	arity() (min, max int)
	// accepts reports whether an upstream producing k can feed this stage.
	accepts(k Kind) bool
	// run executes the stage. g is the pipeline input graph; ins are the
	// upstream values in sorted from-ID order. cacheHit reports the result
	// was served from the session cache without executing.
	run(ctx context.Context, ex *Executor, g graph.Interface, ins []*value) (v *value, cacheHit bool, err error)
}

// inputGraph resolves the graph a source-style stage (decompose, cover)
// operates on: the single graph-valued upstream when one is wired, else
// the pipeline input graph.
func inputGraph(g graph.Interface, ins []*value) graph.Interface {
	if len(ins) == 1 {
		return ins[0].g
	}
	return g
}

// decomposeStage executes a compiled plan, through the executor's session
// when one is attached.
type decomposeStage struct{ pl *decomp.Plan }

// Decompose returns a stage executing the compiled plan on its input
// graph: the pipeline input, or the skeleton of an upstream spanner stage
// (0 or 1 in-edges). With a session attached to the executor the stage is
// served through the session cache — identical (graph, plan, seed)
// triples short-circuit.
func Decompose(pl *decomp.Plan) Stage { return &decomposeStage{pl: pl} }

// Plan returns the stage's compiled plan (nil for non-decompose stages
// handed to it). It is how codecs and executors introspect the stage.
func (s *decomposeStage) Plan() *decomp.Plan { return s.pl }

func (s *decomposeStage) Kind() Kind          { return KindPartition }
func (s *decomposeStage) arity() (int, int)   { return 0, 1 }
func (s *decomposeStage) accepts(k Kind) bool { return k.graphValued() }

func (s *decomposeStage) run(ctx context.Context, ex *Executor, g graph.Interface, ins []*value) (*value, bool, error) {
	in := inputGraph(g, ins)
	if ex.sess != nil {
		j := ex.sess.Submit(ctx, s.pl, in)
		p, err := j.Wait()
		if err != nil {
			return nil, false, err
		}
		return &value{kind: KindPartition, g: in, part: p}, j.CacheHit(), nil
	}
	pl := s.pl
	if ex.rec != nil && pl.Recorder() == nil {
		pl = pl.WithRecorder(ex.rec)
	}
	p, err := pl.Run(ctx, in)
	if err != nil {
		return nil, false, err
	}
	return &value{kind: KindPartition, g: in, part: p}, false, nil
}

// recolorStage adapts a partition into an application input.
type recolorStage struct{}

// Recolor returns a stage adapting its upstream partition into an
// application input (apps.FromPartition): member lists copied, and
// partitions without a proper supergraph coloring (MPX) recolored
// greedily. Exactly one partition-producing in-edge.
func Recolor() Stage { return recolorStage{} }

func (recolorStage) Kind() Kind          { return KindAppInput }
func (recolorStage) arity() (int, int)   { return 1, 1 }
func (recolorStage) accepts(k Kind) bool { return k == KindPartition }

func (recolorStage) run(_ context.Context, _ *Executor, _ graph.Interface, ins []*value) (*value, bool, error) {
	in, err := apps.FromPartition(ins[0].g, ins[0].part)
	if err != nil {
		return nil, false, err
	}
	return &value{kind: KindAppInput, g: ins[0].g, in: &in}, false, nil
}

// appStage runs one symmetry-breaking application on a recolored input.
type appStage struct{ kind Kind }

// MIS returns a stage computing a maximal independent set from its
// upstream application input (exactly one recolor in-edge).
func MIS() Stage { return appStage{kind: KindMIS} }

// Coloring returns a stage computing a (Δ+1)-coloring from its upstream
// application input.
func Coloring() Stage { return appStage{kind: KindColoring} }

// Matching returns a stage computing a maximal matching from its upstream
// application input.
func Matching() Stage { return appStage{kind: KindMatching} }

func (s appStage) Kind() Kind        { return s.kind }
func (appStage) arity() (int, int)   { return 1, 1 }
func (appStage) accepts(k Kind) bool { return k == KindAppInput }

func (s appStage) run(_ context.Context, _ *Executor, _ graph.Interface, ins []*value) (*value, bool, error) {
	g, in := ins[0].g, *ins[0].in
	v := &value{kind: s.kind, g: g}
	var err error
	switch s.kind {
	case KindMIS:
		v.mis, err = apps.MIS(g, in)
	case KindColoring:
		v.col, err = apps.Coloring(g, in)
	default:
		v.mat, err = apps.Matching(g, in)
	}
	if err != nil {
		return nil, false, err
	}
	return v, false, nil
}

// spannerStage builds a sparse skeleton from a partition.
type spannerStage struct{}

// Spanner returns a stage building the sparse skeleton of its upstream
// partition (spanner.Build; the partition must be complete). The produced
// value is graph-valued: a downstream decompose or cover stage runs on
// the skeleton.
func Spanner() Stage { return spannerStage{} }

func (spannerStage) Kind() Kind          { return KindSpanner }
func (spannerStage) arity() (int, int)   { return 1, 1 }
func (spannerStage) accepts(k Kind) bool { return k == KindPartition }

func (spannerStage) run(_ context.Context, _ *Executor, _ graph.Interface, ins []*value) (*value, bool, error) {
	sp, err := spanner.Build(ins[0].g, ins[0].part)
	if err != nil {
		return nil, false, err
	}
	return &value{kind: KindSpanner, g: sp.G, span: sp}, false, nil
}

// coverStage builds a neighborhood cover of its input graph.
type coverStage struct{ opts cover.Options }

// Cover returns a stage building a W-neighborhood cover of its input
// graph (the pipeline input, or an upstream spanner's skeleton; 0 or 1
// in-edges). The stage's power-graph decomposition rides the executor's
// session when one is attached — o.Session is overridden.
func Cover(o cover.Options) Stage { return &coverStage{opts: o} }

func (*coverStage) Kind() Kind          { return KindCover }
func (*coverStage) arity() (int, int)   { return 0, 1 }
func (*coverStage) accepts(k Kind) bool { return k.graphValued() }

func (s *coverStage) run(ctx context.Context, ex *Executor, g graph.Interface, ins []*value) (*value, bool, error) {
	in := inputGraph(g, ins)
	o := s.opts
	o.Session = ex.sess
	c, err := cover.BuildContext(ctx, in, o)
	if err != nil {
		return nil, false, err
	}
	return &value{kind: KindCover, g: in, cov: c}, false, nil
}
