package pipeline

// The level-parallel executor. Each DAG level is a barrier: its stages
// are dispatched in sorted stage-ID order onto a bounded worker group,
// and the next level starts when the whole level completed. The schedule
// is deterministic and — because stages communicate only through their
// declared edges and every stage is deterministic in its inputs — the
// results are bit-identical for any worker count, the same contract the
// engine's parallel scheduler keeps.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"netdecomp/internal/apps"
	"netdecomp/internal/cover"
	"netdecomp/internal/decomp"
	"netdecomp/internal/graph"
	"netdecomp/internal/obs"
	"netdecomp/internal/session"
	"netdecomp/internal/spanner"
)

// StageStatus is the lifecycle point a StageEvent reports.
type StageStatus int

const (
	// StageStart fires when the stage is dispatched.
	StageStart StageStatus = iota
	// StageDone fires when the stage completed successfully.
	StageDone
	// StageError fires when the stage failed; Err carries the cause.
	StageError
)

// String names the status for logs and wire documents.
func (s StageStatus) String() string {
	switch s {
	case StageStart:
		return "start"
	case StageDone:
		return "done"
	default:
		return "error"
	}
}

// StageEvent is one streamed execution progress record. Events of one Run
// are delivered sequentially (the executor serializes the observer), in
// dispatch order for StageStart and completion order for StageDone.
type StageEvent struct {
	// Stage and Kind identify the stage; Level is its DAG level.
	Stage string
	Kind  Kind
	Level int
	// Status is the lifecycle point.
	Status StageStatus
	// CacheHit and LatencyNs are set on StageDone: served from the session
	// cache, and wall-clock stage latency.
	CacheHit  bool
	LatencyNs int64
	// Err is set on StageError.
	Err error
}

// ExecOption configures an Executor.
type ExecOption func(*Executor)

// WithSession threads a serving session through the pipeline: every
// decompose stage (and every cover stage's power-graph decomposition) is
// submitted to s instead of executing its plan directly, so identical
// work — across stages, across re-runs, across pipelines sharing the
// session — is deduplicated and served from the result cache.
func WithSession(s *session.Session) ExecOption {
	return func(e *Executor) { e.sess = s }
}

// WithWorkers caps the number of concurrently executing stages (0 or
// negative = no cap beyond the level width). Results are bit-identical
// for any cap.
func WithWorkers(n int) ExecOption {
	return func(e *Executor) { e.workers = n }
}

// WithRecorder attaches a telemetry recorder: Run wraps the execution in
// a "pipeline" span with one "stage/<id>" child span per stage, observes
// per-stage latency into the pipeline.stage.ns and pipeline.stage.<id>.ns
// histograms, and counts runs, stage executions, session cache hits and
// errors under the pipeline.* names.
func WithRecorder(rec *obs.Recorder) ExecOption {
	return func(e *Executor) { e.rec = rec }
}

// WithObserver streams stage lifecycle events to fn as the DAG executes.
// The executor serializes calls (fn never runs concurrently with itself);
// fn must not block for long — it stalls the reporting stage's worker.
func WithObserver(fn func(StageEvent)) ExecOption {
	return func(e *Executor) { e.observer = fn }
}

// Executor runs pipelines. The zero value runs stages directly (no
// session, no telemetry, unbounded level parallelism); it is safe for
// concurrent Runs.
type Executor struct {
	sess     *session.Session
	workers  int
	rec      *obs.Recorder
	observer func(StageEvent)

	obsMu sync.Mutex // serializes observer callbacks
}

// NewExecutor builds an executor from the options.
func NewExecutor(opts ...ExecOption) *Executor {
	e := &Executor{}
	for _, o := range opts {
		if o != nil {
			o(e)
		}
	}
	return e
}

// Run is the one-shot convenience: build an executor from the options and
// execute p on g.
func Run(ctx context.Context, p *Pipeline, g graph.Interface, opts ...ExecOption) (*Result, error) {
	return NewExecutor(opts...).Run(ctx, p, g)
}

// StageResult is one completed stage's outcome. Exactly one of the typed
// result fields is set, matching Kind.
type StageResult struct {
	// ID, Kind, Level locate the stage in the DAG.
	ID    string
	Kind  Kind
	Level int
	// CacheHit reports the stage was served from the session cache without
	// executing (decompose stages only).
	CacheHit bool
	// LatencyNs is the stage's wall-clock latency.
	LatencyNs int64

	// Graph is the graph the result is relative to: the stage's input
	// graph, except for spanner stages where it is the produced skeleton.
	Graph graph.Interface
	// Partition is set for decompose stages.
	Partition *decomp.Partition
	// AppInput is set for recolor stages.
	AppInput *apps.Input
	// MIS, Coloring, Matching are set for the application stages.
	MIS      *apps.MISResult
	Coloring *apps.ColoringResult
	Matching *apps.MatchingResult
	// Spanner is set for spanner stages.
	Spanner *spanner.Spanner
	// Cover is set for cover stages.
	Cover *cover.Cover
}

// Result is one pipeline execution's outcome.
type Result struct {
	// Order is the deterministic execution order (levels concatenated).
	Order []string
	// ElapsedNs is the whole run's wall-clock latency.
	ElapsedNs int64
	// CacheHits counts stages served from the session cache.
	CacheHits int

	stages map[string]*StageResult
}

// Stage returns one stage's result (nil for unknown IDs).
func (r *Result) Stage(id string) *StageResult { return r.stages[id] }

// Partition returns the partition a decompose stage produced, or nil.
func (r *Result) Partition(id string) *decomp.Partition {
	if sr := r.stages[id]; sr != nil {
		return sr.Partition
	}
	return nil
}

// Run executes p on g: level-parallel, deterministic dispatch order,
// fail-fast. The first stage error cancels the remaining stages and is
// returned wrapped with the stage ID; ctx cancellation does the same.
func (e *Executor) Run(ctx context.Context, p *Pipeline, g graph.Interface) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("pipeline: Run with nil Pipeline")
	}
	if g == nil {
		return nil, fmt.Errorf("pipeline: Run with nil graph")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	var root *obs.Span
	rec := e.rec
	if rec != nil {
		rec.Counter("pipeline.runs").Inc()
		root = rec.Span("pipeline", obs.KV{K: "stages", V: int64(len(p.stages))}, obs.KV{K: "levels", V: int64(len(p.levels))})
		defer root.End()
		rec = rec.Under(root)
	}

	res := &Result{Order: p.Stages(), stages: make(map[string]*StageResult, len(p.stages))}
	values := make(map[string]*value, len(p.stages))

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex // guards values, res.stages, firstErr
		firstErr error
	)
	for li, level := range p.levels {
		// A doomed DAG stops at the level boundary: when the request's
		// budget is already spent, dispatching the next level would only
		// burn workers on results nobody can receive.
		if cerr := ctx.Err(); cerr != nil {
			if e.rec != nil {
				e.rec.Counter("pipeline.deadline.stops").Inc()
				e.rec.Counter("pipeline.errors").Inc()
			}
			return nil, fmt.Errorf("pipeline: budget expired before level %d: %w", li, cerr)
		}
		// One level is a barrier: dispatch its stages in sorted-ID order
		// through a bounded worker group, then wait before the next level.
		sem := make(chan struct{}, levelWorkers(e.workers, len(level)))
		var wg sync.WaitGroup
		for _, id := range level {
			n := p.stages[id]
			mu.Lock()
			ins := make([]*value, len(n.ins))
			for i, from := range n.ins {
				ins[i] = values[from]
			}
			abort := firstErr != nil
			mu.Unlock()
			if abort {
				break
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(n *node, ins []*value) {
				defer wg.Done()
				defer func() { <-sem }()
				sr, v, err := e.runStage(ctx, rec, g, n, ins)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("pipeline: stage %s: %w", n.id, err)
						cancel()
					}
					return
				}
				values[n.id] = v
				res.stages[n.id] = sr
				if sr.CacheHit {
					res.CacheHits++
				}
			}(n, ins)
		}
		wg.Wait()
		mu.Lock()
		err := firstErr
		mu.Unlock()
		if err != nil {
			if e.rec != nil {
				e.rec.Counter("pipeline.errors").Inc()
			}
			return nil, err
		}
	}
	res.ElapsedNs = time.Since(start).Nanoseconds()
	if e.rec != nil {
		e.rec.Histogram("pipeline.ns").Observe(res.ElapsedNs)
	}
	return res, nil
}

// runStage executes one stage with telemetry and observer reporting.
func (e *Executor) runStage(ctx context.Context, rec *obs.Recorder, g graph.Interface, n *node, ins []*value) (*StageResult, *value, error) {
	e.emit(StageEvent{Stage: n.id, Kind: n.st.Kind(), Level: n.level, Status: StageStart})
	var span *obs.Span
	if rec != nil {
		rec.Counter("pipeline.stage.runs").Inc()
		span = rec.Span("stage/"+n.id, obs.KV{K: "level", V: int64(n.level)})
	}
	start := time.Now()
	v, hit, err := n.st.run(ctx, e, g, ins)
	lat := time.Since(start).Nanoseconds()
	if rec != nil {
		rec.Histogram("pipeline.stage.ns").Observe(lat)
		rec.Histogram("pipeline.stage." + n.id + ".ns").Observe(lat)
		if hit {
			rec.Counter("pipeline.stage.cachehits").Inc()
		}
		if err != nil {
			rec.Counter("pipeline.stage.errors").Inc()
		}
		span.End()
	}
	if err != nil {
		e.emit(StageEvent{Stage: n.id, Kind: n.st.Kind(), Level: n.level, Status: StageError, LatencyNs: lat, Err: err})
		return nil, nil, err
	}
	e.emit(StageEvent{Stage: n.id, Kind: n.st.Kind(), Level: n.level, Status: StageDone, CacheHit: hit, LatencyNs: lat})
	sr := &StageResult{
		ID: n.id, Kind: n.st.Kind(), Level: n.level,
		CacheHit: hit, LatencyNs: lat,
		Graph: v.g, Partition: v.part, AppInput: v.in,
		MIS: v.mis, Coloring: v.col, Matching: v.mat,
		Spanner: v.span, Cover: v.cov,
	}
	return sr, v, nil
}

// emit delivers one observer event, serialized.
func (e *Executor) emit(ev StageEvent) {
	if e.observer == nil {
		return
	}
	e.obsMu.Lock()
	e.observer(ev)
	e.obsMu.Unlock()
}

// levelWorkers sizes the per-level semaphore.
func levelWorkers(cap, width int) int {
	if cap <= 0 || cap > width {
		if width < 1 {
			return 1
		}
		return width
	}
	return cap
}

// sortStageDocs orders stage results by (level, id) — the helper the wire
// layers use to render Result deterministically.
func (r *Result) SortedStages() []*StageResult {
	out := make([]*StageResult, 0, len(r.stages))
	for _, sr := range r.stages {
		out = append(out, sr)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Level != out[j].Level {
			return out[i].Level < out[j].Level
		}
		return out[i].ID < out[j].ID
	})
	return out
}
