package pipeline_test

import (
	"context"
	"testing"

	"netdecomp/internal/pipeline"
	"netdecomp/internal/session"
)

// BenchmarkPipelineWarmRerun measures a full pipeline re-run against a
// warm session: every decompose stage is a cache hit, so the cost is the
// derived stages (recolor, apps, spanner, cover assembly) plus the
// executor's scheduling — the interactive re-run path BENCH_pipeline.json
// gates in CI.
func BenchmarkPipelineWarmRerun(b *testing.B) {
	g := testGraph(b, 1024, 1)
	p := fanoutPipeline(b, 7)
	sess := session.New()
	b.Cleanup(func() { sess.Close() })
	ctx := context.Background()
	if _, err := pipeline.Run(ctx, p, g, pipeline.WithSession(sess)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pipeline.Run(ctx, p, g, pipeline.WithSession(sess))
		if err != nil {
			b.Fatal(err)
		}
		if res.CacheHits != 1 {
			b.Fatalf("warm re-run: CacheHits=%d, want 1", res.CacheHits)
		}
	}
}

// BenchmarkPipelineCold measures the same pipeline with no session —
// every stage recomputes — recorded (not gated) for the warm/cold ratio.
func BenchmarkPipelineCold(b *testing.B) {
	g := testGraph(b, 1024, 1)
	p := fanoutPipeline(b, 7)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.Run(ctx, p, g); err != nil {
			b.Fatal(err)
		}
	}
}
