package pipeline

// The fluent DAG builder. AddStage/AddEdge accumulate nodes, edges and
// any incremental errors; Build performs the structural validation in one
// place — unique IDs, known endpoints, typed edges, arity, acyclicity via
// Kahn's algorithm — and freezes the pipeline with its level schedule, so
// an Executor never re-validates.

import (
	"fmt"
	"sort"
	"strings"
)

// Builder constructs a validated Pipeline using a fluent API. Errors
// accumulate across AddStage/AddEdge calls and are reported together by
// Build, so call sites chain without per-call checks.
type Builder struct {
	order  []string
	stages map[string]Stage
	edges  [][2]string
	errs   []error
}

// NewBuilder returns an empty pipeline builder.
func NewBuilder() *Builder {
	return &Builder{stages: map[string]Stage{}}
}

// AddStage registers a stage under id. IDs must be unique and non-empty;
// any other string content is fine. Sorted IDs order the deterministic
// dispatch within a level.
func (b *Builder) AddStage(id string, st Stage) *Builder {
	switch {
	case id == "":
		b.errs = append(b.errs, fmt.Errorf("stage with empty id"))
	case st == nil:
		b.errs = append(b.errs, fmt.Errorf("stage %q is nil", id))
	default:
		if _, dup := b.stages[id]; dup {
			b.errs = append(b.errs, fmt.Errorf("duplicate stage id %q", id))
			return b
		}
		b.stages[id] = st
		b.order = append(b.order, id)
	}
	return b
}

// AddEdge declares a typed data dependency: to consumes from's value.
func (b *Builder) AddEdge(from, to string) *Builder {
	b.edges = append(b.edges, [2]string{from, to})
	return b
}

// Pipeline is a validated, immutable stage DAG. Build one with Builder
// (or a JSON Spec) and execute it any number of times with an Executor;
// a Pipeline is safe for concurrent Runs.
type Pipeline struct {
	stages map[string]*node
	// levels is the execution schedule: levels[l] holds the sorted IDs of
	// the stages whose longest dependency chain has length l. All stages of
	// one level are mutually independent.
	levels [][]string
}

// node is one frozen DAG vertex.
type node struct {
	id    string
	st    Stage
	ins   []string // sorted upstream IDs
	outs  []string // sorted downstream IDs
	level int
}

// Build validates the accumulated stages and edges and freezes the
// pipeline. All accumulated errors are reported together.
func (b *Builder) Build() (*Pipeline, error) {
	errs := append([]error(nil), b.errs...)
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	if len(b.stages) == 0 && len(errs) == 0 {
		fail("pipeline has no stages")
	}

	nodes := make(map[string]*node, len(b.stages))
	for id, st := range b.stages {
		nodes[id] = &node{id: id, st: st}
	}
	seen := map[[2]string]bool{}
	for _, e := range b.edges {
		from, to := e[0], e[1]
		nf, nt := nodes[from], nodes[to]
		switch {
		case nf == nil:
			fail("edge %s->%s: unknown stage %q", from, to, from)
		case nt == nil:
			fail("edge %s->%s: unknown stage %q", from, to, to)
		case from == to:
			fail("edge %s->%s: self-loop", from, to)
		case seen[e]:
			fail("edge %s->%s: duplicate", from, to)
		default:
			seen[e] = true
			// The typed-dependency check: the producer's kind must be
			// consumable by the receiver.
			if !nt.st.accepts(nf.st.Kind()) {
				fail("edge %s->%s: %s stage cannot consume a %s value",
					from, to, nt.st.Kind(), nf.st.Kind())
				continue
			}
			nf.outs = append(nf.outs, to)
			nt.ins = append(nt.ins, from)
		}
	}
	for _, id := range sortedIDs(nodes) {
		n := nodes[id]
		sort.Strings(n.ins)
		sort.Strings(n.outs)
		if min, max := n.st.arity(); len(n.ins) < min || len(n.ins) > max {
			switch {
			case min == max && min == 1:
				fail("stage %s (%s): wants exactly one in-edge, has %d", id, n.st.Kind(), len(n.ins))
			case len(n.ins) < min:
				fail("stage %s (%s): wants at least %d in-edges, has %d", id, n.st.Kind(), min, len(n.ins))
			default:
				fail("stage %s (%s): wants at most %d in-edges, has %d", id, n.st.Kind(), max, len(n.ins))
			}
		}
	}

	// Kahn's algorithm: peel in-degree-zero stages level by level. Anything
	// left unpeeled sits on a cycle.
	indeg := make(map[string]int, len(nodes))
	for id, n := range nodes {
		indeg[id] = len(n.ins)
	}
	frontier := make([]string, 0, len(nodes))
	for id, d := range indeg {
		if d == 0 {
			frontier = append(frontier, id)
		}
	}
	sort.Strings(frontier)
	var levels [][]string
	peeled := 0
	for level := 0; len(frontier) > 0; level++ {
		levels = append(levels, frontier)
		var next []string
		for _, id := range frontier {
			nodes[id].level = level
			peeled++
			for _, out := range nodes[id].outs {
				if indeg[out]--; indeg[out] == 0 {
					next = append(next, out)
				}
			}
		}
		sort.Strings(next)
		frontier = next
	}
	if peeled != len(nodes) {
		var cyclic []string
		for id, d := range indeg {
			if d > 0 {
				cyclic = append(cyclic, id)
			}
		}
		sort.Strings(cyclic)
		fail("cycle through stages [%s]", strings.Join(cyclic, " "))
	}

	if len(errs) > 0 {
		msgs := make([]string, len(errs))
		for i, e := range errs {
			msgs[i] = e.Error()
		}
		return nil, fmt.Errorf("pipeline: invalid: %s", strings.Join(msgs, "; "))
	}
	return &Pipeline{stages: nodes, levels: levels}, nil
}

// Stages returns the stage IDs in execution order: by level, sorted
// within each level — exactly the deterministic dispatch order.
func (p *Pipeline) Stages() []string {
	out := make([]string, 0, len(p.stages))
	for _, level := range p.levels {
		out = append(out, level...)
	}
	return out
}

// Levels returns the execution schedule: the sorted stage IDs of each DAG
// level. Stages of one level are mutually independent and run in
// parallel.
func (p *Pipeline) Levels() [][]string {
	out := make([][]string, len(p.levels))
	for i, l := range p.levels {
		out[i] = append([]string(nil), l...)
	}
	return out
}

// Stage returns the stage registered under id (nil when absent).
func (p *Pipeline) Stage(id string) Stage {
	if n := p.stages[id]; n != nil {
		return n.st
	}
	return nil
}

// Inputs returns the sorted upstream stage IDs of id.
func (p *Pipeline) Inputs(id string) []string {
	if n := p.stages[id]; n != nil {
		return append([]string(nil), n.ins...)
	}
	return nil
}

// Downstream returns every stage reachable from id (id excluded), sorted
// — the set a change to id forces to recompute.
func (p *Pipeline) Downstream(id string) []string {
	reached := map[string]bool{}
	var walk func(string)
	walk = func(cur string) {
		for _, out := range p.stages[cur].outs {
			if !reached[out] {
				reached[out] = true
				walk(out)
			}
		}
	}
	if _, ok := p.stages[id]; !ok {
		return nil
	}
	walk(id)
	out := make([]string, 0, len(reached))
	for id := range reached {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// sortedIDs returns the node map's keys in sorted order.
func sortedIDs(nodes map[string]*node) []string {
	ids := make([]string, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
