package pipeline_test

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"netdecomp/internal/apps"
	"netdecomp/internal/cover"
	"netdecomp/internal/decomp"
	"netdecomp/internal/gen"
	"netdecomp/internal/graph"
	"netdecomp/internal/obs"
	"netdecomp/internal/pipeline"
	"netdecomp/internal/session"
	"netdecomp/internal/spanner"
)

// testGraph builds the deterministic test workload.
func testGraph(t testing.TB, n int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := gen.Build(gen.FamilyGnp, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// completePlan compiles a forced-complete elkin-neiman plan at seed.
func completePlan(t testing.TB, seed uint64) *decomp.Plan {
	t.Helper()
	pl, err := decomp.Compile("elkin-neiman", decomp.WithSeed(seed), decomp.WithForceComplete())
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// fanoutPipeline wires the canonical chain the paper's applications imply:
// decompose → recolor → {mis, coloring, matching} plus decompose →
// spanner and an independent cover — 7 stages over 3 levels.
func fanoutPipeline(t testing.TB, seed uint64) *pipeline.Pipeline {
	t.Helper()
	p, err := pipeline.NewBuilder().
		AddStage("dec", pipeline.Decompose(completePlan(t, seed))).
		AddStage("re", pipeline.Recolor()).
		AddStage("mis", pipeline.MIS()).
		AddStage("col", pipeline.Coloring()).
		AddStage("mat", pipeline.Matching()).
		AddStage("sp", pipeline.Spanner()).
		AddStage("cov", pipeline.Cover(cover.Options{W: 1, Seed: seed})).
		AddEdge("dec", "re").
		AddEdge("re", "mis").
		AddEdge("re", "col").
		AddEdge("re", "mat").
		AddEdge("dec", "sp").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestBuilderValidation pins every structural check Build performs, and
// that independent errors are reported together.
func TestBuilderValidation(t *testing.T) {
	pl := completePlan(t, 1)
	cases := []struct {
		name  string
		build func() *pipeline.Builder
		want  []string
	}{
		{"empty", func() *pipeline.Builder { return pipeline.NewBuilder() },
			[]string{"no stages"}},
		{"empty id", func() *pipeline.Builder {
			return pipeline.NewBuilder().AddStage("", pipeline.Recolor())
		}, []string{"empty id"}},
		{"nil stage", func() *pipeline.Builder {
			return pipeline.NewBuilder().AddStage("a", nil)
		}, []string{`stage "a" is nil`}},
		{"duplicate id", func() *pipeline.Builder {
			return pipeline.NewBuilder().
				AddStage("a", pipeline.Decompose(pl)).
				AddStage("a", pipeline.Decompose(pl))
		}, []string{`duplicate stage id "a"`}},
		{"unknown endpoints", func() *pipeline.Builder {
			return pipeline.NewBuilder().
				AddStage("a", pipeline.Decompose(pl)).
				AddEdge("a", "ghost").AddEdge("phantom", "a")
		}, []string{`unknown stage "ghost"`, `unknown stage "phantom"`}},
		{"self loop", func() *pipeline.Builder {
			return pipeline.NewBuilder().
				AddStage("a", pipeline.Decompose(pl)).
				AddEdge("a", "a")
		}, []string{"self-loop"}},
		{"duplicate edge", func() *pipeline.Builder {
			return pipeline.NewBuilder().
				AddStage("a", pipeline.Decompose(pl)).
				AddStage("b", pipeline.Recolor()).
				AddEdge("a", "b").AddEdge("a", "b")
		}, []string{"edge a->b: duplicate"}},
		{"typed edge", func() *pipeline.Builder {
			return pipeline.NewBuilder().
				AddStage("a", pipeline.Decompose(pl)).
				AddStage("m", pipeline.MIS()).
				AddEdge("a", "m")
		}, []string{"mis stage cannot consume a decompose value"}},
		{"missing in-edge", func() *pipeline.Builder {
			return pipeline.NewBuilder().AddStage("re", pipeline.Recolor())
		}, []string{"stage re (recolor): wants exactly one in-edge, has 0"}},
		{"too many in-edges", func() *pipeline.Builder {
			return pipeline.NewBuilder().
				AddStage("a", pipeline.Decompose(pl)).
				AddStage("sp", pipeline.Spanner()).
				AddStage("d2", pipeline.Decompose(pl)).
				AddStage("d3", pipeline.Decompose(pl)).
				AddStage("sp2", pipeline.Spanner()).
				AddEdge("a", "sp").AddEdge("d3", "sp2").
				AddEdge("sp", "d2").AddEdge("sp2", "d2")
		}, []string{"stage d2 (decompose): wants at most 1 in-edges, has 2"}},
		{"cycle", func() *pipeline.Builder {
			return pipeline.NewBuilder().
				AddStage("a", pipeline.Decompose(pl)).
				AddStage("s1", pipeline.Spanner()).
				AddStage("d1", pipeline.Decompose(pl)).
				AddStage("s2", pipeline.Spanner()).
				AddEdge("a", "s1").
				AddEdge("s1", "d1").
				AddEdge("d1", "s2").
				AddEdge("s2", "d1")
		}, []string{"cycle through stages [d1 s2]"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := tc.build().Build()
			if err == nil {
				t.Fatalf("Build succeeded, want error mentioning %q", tc.want)
			}
			if p != nil {
				t.Error("Build returned a pipeline alongside the error")
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not mention %q", err, want)
				}
			}
		})
	}
}

// TestLevelsAndDownstream pins the Kahn level schedule and the reachable
// set on the canonical fan-out DAG.
func TestLevelsAndDownstream(t *testing.T) {
	p := fanoutPipeline(t, 1)
	wantLevels := [][]string{
		{"cov", "dec"},
		{"re", "sp"},
		{"col", "mat", "mis"},
	}
	if got := p.Levels(); !reflect.DeepEqual(got, wantLevels) {
		t.Errorf("Levels() = %v, want %v", got, wantLevels)
	}
	wantOrder := []string{"cov", "dec", "re", "sp", "col", "mat", "mis"}
	if got := p.Stages(); !reflect.DeepEqual(got, wantOrder) {
		t.Errorf("Stages() = %v, want %v", got, wantOrder)
	}
	wantDown := []string{"col", "mat", "mis", "re", "sp"}
	if got := p.Downstream("dec"); !reflect.DeepEqual(got, wantDown) {
		t.Errorf("Downstream(dec) = %v, want %v", got, wantDown)
	}
	if got := p.Downstream("mis"); len(got) != 0 {
		t.Errorf("Downstream(mis) = %v, want empty", got)
	}
	if got := p.Inputs("re"); !reflect.DeepEqual(got, []string{"dec"}) {
		t.Errorf("Inputs(re) = %v, want [dec]", got)
	}
}

// TestPipelineMatchesHandWired is the e2e contract: the full fan-out
// pipeline produces bit-identical results to the hand-sequenced calls it
// replaces.
func TestPipelineMatchesHandWired(t *testing.T) {
	g := testGraph(t, 400, 1)
	ctx := context.Background()
	const seed = 7

	// The hand-wired chain.
	pl := completePlan(t, seed)
	part, err := pl.Run(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	in, err := apps.FromPartition(g, part)
	if err != nil {
		t.Fatal(err)
	}
	wantMIS, err := apps.MIS(g, in)
	if err != nil {
		t.Fatal(err)
	}
	wantCol, err := apps.Coloring(g, in)
	if err != nil {
		t.Fatal(err)
	}
	wantMat, err := apps.Matching(g, in)
	if err != nil {
		t.Fatal(err)
	}
	wantSp, err := spanner.Build(g, part)
	if err != nil {
		t.Fatal(err)
	}
	wantCov, err := cover.BuildContext(ctx, g, cover.Options{W: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}

	res, err := pipeline.Run(ctx, fanoutPipeline(t, seed), g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Partition("dec"), part) {
		t.Error("dec: pipeline partition differs from hand-wired Plan.Run")
	}
	if got := *res.Stage("re").AppInput; !reflect.DeepEqual(got, in) {
		t.Error("re: pipeline app input differs from apps.FromPartition")
	}
	if !reflect.DeepEqual(res.Stage("mis").MIS, wantMIS) {
		t.Error("mis: pipeline result differs from apps.MIS")
	}
	if !reflect.DeepEqual(res.Stage("col").Coloring, wantCol) {
		t.Error("col: pipeline result differs from apps.Coloring")
	}
	if !reflect.DeepEqual(res.Stage("mat").Matching, wantMat) {
		t.Error("mat: pipeline result differs from apps.Matching")
	}
	gotSp := res.Stage("sp").Spanner
	if gotSp.Edges != wantSp.Edges || graph.Fingerprint(gotSp.G) != graph.Fingerprint(wantSp.G) {
		t.Error("sp: pipeline spanner differs from spanner.Build")
	}
	if !reflect.DeepEqual(res.Stage("cov").Cover, wantCov) {
		t.Error("cov: pipeline cover differs from cover.BuildContext")
	}
	if want := []string{"cov", "dec", "re", "sp", "col", "mat", "mis"}; !reflect.DeepEqual(res.Order, want) {
		t.Errorf("Order = %v, want %v", res.Order, want)
	}
}

// stageDigest flattens a stage result's semantic content (no latencies,
// no pointers) into a comparable value.
func stageDigest(sr *pipeline.StageResult) string {
	switch sr.Kind {
	case pipeline.KindSpanner:
		return fmt.Sprintf("spanner:%016x", graph.Fingerprint(sr.Spanner.G))
	case pipeline.KindPartition:
		data, _ := json.Marshal(sr.Partition)
		return "partition:" + string(data)
	case pipeline.KindAppInput:
		return fmt.Sprintf("appinput:%+v", *sr.AppInput)
	case pipeline.KindMIS:
		return fmt.Sprintf("mis:%+v", *sr.MIS)
	case pipeline.KindColoring:
		return fmt.Sprintf("coloring:%+v", *sr.Coloring)
	case pipeline.KindMatching:
		return fmt.Sprintf("matching:%+v", *sr.Matching)
	default:
		return fmt.Sprintf("cover:%+v", *sr.Cover)
	}
}

// TestDeterministicAcrossWorkers is the satellite-2 pin: the same pipeline
// on the same graph yields bit-identical stage results for every worker
// cap 1..8, with the identical execution order.
func TestDeterministicAcrossWorkers(t *testing.T) {
	g := testGraph(t, 300, 2)
	ctx := context.Background()

	var wantDigests map[string]string
	var wantOrder []string
	for workers := 1; workers <= 8; workers++ {
		p := fanoutPipeline(t, 11)
		res, err := pipeline.Run(ctx, p, g, pipeline.WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		digests := map[string]string{}
		for _, sr := range res.SortedStages() {
			digests[sr.ID] = stageDigest(sr)
		}
		if wantDigests == nil {
			wantDigests, wantOrder = digests, res.Order
			continue
		}
		if !reflect.DeepEqual(res.Order, wantOrder) {
			t.Errorf("workers=%d: order %v differs from workers=1 order %v", workers, res.Order, wantOrder)
		}
		for id, want := range wantDigests {
			if digests[id] != want {
				t.Errorf("workers=%d: stage %s result differs from workers=1", workers, id)
			}
		}
	}
}

// chainPipeline builds the decompose-of-spanner chain the cache property
// test exercises: dec1 → sp1 → dec2 → sp2 → dec3, plus an independent
// dec4. Changing dec1's seed changes sp1's skeleton fingerprint, forcing
// dec2 and dec3 to recompute while dec4 stays cached.
func chainPipeline(t testing.TB, seed1 uint64) *pipeline.Pipeline {
	t.Helper()
	p, err := pipeline.NewBuilder().
		AddStage("dec1", pipeline.Decompose(completePlan(t, seed1))).
		AddStage("sp1", pipeline.Spanner()).
		AddStage("dec2", pipeline.Decompose(completePlan(t, 21))).
		AddStage("sp2", pipeline.Spanner()).
		AddStage("dec3", pipeline.Decompose(completePlan(t, 22))).
		AddStage("dec4", pipeline.Decompose(completePlan(t, 23))).
		AddEdge("dec1", "sp1").
		AddEdge("sp1", "dec2").
		AddEdge("dec2", "sp2").
		AddEdge("sp2", "dec3").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// resultDigests flattens a full run for bit-identity comparison.
func resultDigests(res *pipeline.Result) map[string]string {
	out := map[string]string{}
	for _, sr := range res.SortedStages() {
		out[sr.ID] = stageDigest(sr)
	}
	return out
}

// TestRerunRecomputesOnlyDownstream is the satellite-3 cache property: an
// unchanged re-run serves every decompose stage from the session cache,
// and a re-run after mutating one upstream stage's seed recomputes exactly
// the decompose stages downstream of the change — asserted through
// session.Stats hit/miss deltas — with results bit-identical to a
// from-scratch execution on a fresh session.
func TestRerunRecomputesOnlyDownstream(t *testing.T) {
	g := testGraph(t, 300, 3)
	ctx := context.Background()
	sess := session.New()
	defer sess.Close()

	p := chainPipeline(t, 31)
	res1, err := pipeline.Run(ctx, p, g, pipeline.WithSession(sess))
	if err != nil {
		t.Fatal(err)
	}
	st := sess.Stats()
	if st.Misses != 4 || st.Hits != 0 {
		t.Fatalf("cold run: hits=%d misses=%d, want 0/4", st.Hits, st.Misses)
	}
	if res1.CacheHits != 0 {
		t.Fatalf("cold run: CacheHits=%d, want 0", res1.CacheHits)
	}

	// Unchanged re-run: every decompose stage is a cache hit (the spanner
	// stages recompute deterministically, so the skeleton fingerprints —
	// and with them dec2/dec3's cache keys — are unchanged).
	res2, err := pipeline.Run(ctx, p, g, pipeline.WithSession(sess))
	if err != nil {
		t.Fatal(err)
	}
	st = sess.Stats()
	if st.Misses != 4 || st.Hits != 4 {
		t.Fatalf("warm re-run: hits=%d misses=%d, want 4/4", st.Hits, st.Misses)
	}
	if res2.CacheHits != 4 {
		t.Fatalf("warm re-run: CacheHits=%d, want 4", res2.CacheHits)
	}
	for _, id := range []string{"dec1", "dec2", "dec3", "dec4"} {
		if !res2.Stage(id).CacheHit {
			t.Errorf("warm re-run: stage %s not served from cache", id)
		}
	}
	if !reflect.DeepEqual(resultDigests(res2), resultDigests(res1)) {
		t.Error("warm re-run results differ from cold run")
	}

	// Mutate dec1's seed: exactly dec1 plus the downstream decompose
	// stages (dec2, dec3 — reachable through the spanner chain) recompute;
	// the untouched dec4 is served from cache.
	mutated := chainPipeline(t, 32)
	down := mutated.Downstream("dec1")
	if want := []string{"dec2", "dec3", "sp1", "sp2"}; !reflect.DeepEqual(down, want) {
		t.Fatalf("Downstream(dec1) = %v, want %v", down, want)
	}
	res3, err := pipeline.Run(ctx, mutated, g, pipeline.WithSession(sess))
	if err != nil {
		t.Fatal(err)
	}
	st = sess.Stats()
	if st.Misses != 7 || st.Hits != 5 {
		t.Fatalf("mutated re-run: hits=%d misses=%d, want 5/7 (dec4 hit; dec1+2 downstream decomposes miss)", st.Hits, st.Misses)
	}
	if res3.CacheHits != 1 || !res3.Stage("dec4").CacheHit {
		t.Errorf("mutated re-run: want exactly dec4 cached, got CacheHits=%d", res3.CacheHits)
	}
	if resultDigests(res3)["sp1"] == resultDigests(res1)["sp1"] {
		t.Fatal("seed mutation did not change sp1's skeleton — the property test lost its lever")
	}

	// Bit-identity: the mutated run equals a from-scratch execution on a
	// fresh session.
	fresh := session.New()
	defer fresh.Close()
	scratch, err := pipeline.Run(ctx, chainPipeline(t, 32), g, pipeline.WithSession(fresh))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resultDigests(res3), resultDigests(scratch)) {
		t.Error("mutated re-run differs from from-scratch execution")
	}
}

// TestObserverAndTelemetry pins the streaming observer contract (one
// start and one done per stage, levels non-decreasing for starts) and the
// recorder counters.
func TestObserverAndTelemetry(t *testing.T) {
	g := testGraph(t, 200, 4)
	reg := obs.NewRegistry()
	rec := obs.New(reg, nil)
	sess := session.New()
	defer sess.Close()

	var events []pipeline.StageEvent
	res, err := pipeline.Run(context.Background(), fanoutPipeline(t, 5), g,
		pipeline.WithSession(sess),
		pipeline.WithRecorder(rec),
		pipeline.WithObserver(func(ev pipeline.StageEvent) { events = append(events, ev) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	starts, dones := map[string]int{}, map[string]int{}
	lastStartLevel := 0
	for _, ev := range events {
		switch ev.Status {
		case pipeline.StageStart:
			starts[ev.Stage]++
			if ev.Level < lastStartLevel {
				t.Errorf("start of %s at level %d after level %d started", ev.Stage, ev.Level, lastStartLevel)
			}
			lastStartLevel = ev.Level
		case pipeline.StageDone:
			dones[ev.Stage]++
			if ev.LatencyNs <= 0 {
				t.Errorf("done event for %s has no latency", ev.Stage)
			}
		default:
			t.Errorf("unexpected error event for %s: %v", ev.Stage, ev.Err)
		}
	}
	for _, id := range res.Order {
		if starts[id] != 1 || dones[id] != 1 {
			t.Errorf("stage %s: %d starts, %d dones, want 1/1", id, starts[id], dones[id])
		}
	}
	snap := reg.Snapshot()
	counters := map[string]int64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	if counters["pipeline.runs"] != 1 {
		t.Errorf("pipeline.runs = %d, want 1", counters["pipeline.runs"])
	}
	if counters["pipeline.stage.runs"] != int64(len(res.Order)) {
		t.Errorf("pipeline.stage.runs = %d, want %d", counters["pipeline.stage.runs"], len(res.Order))
	}
}

// TestRunErrors pins the fail-fast contract: a failing stage aborts the
// run with a stage-named error.
func TestRunErrors(t *testing.T) {
	g := testGraph(t, 100, 5)
	ctx := context.Background()
	if _, err := pipeline.Run(ctx, nil, g); err == nil {
		t.Error("nil pipeline: want error")
	}
	p := fanoutPipeline(t, 1)
	if _, err := pipeline.Run(ctx, p, nil); err == nil {
		t.Error("nil graph: want error")
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	sess := session.New()
	defer sess.Close()
	if _, err := pipeline.Run(cancelled, p, g, pipeline.WithSession(sess)); err == nil {
		t.Error("cancelled context: want error")
	}

	// A cover stage with a negative radius fails validation at run time;
	// the error names the stage.
	bad, err := pipeline.NewBuilder().
		AddStage("badcov", pipeline.Cover(cover.Options{W: -1})).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = pipeline.Run(ctx, bad, g)
	if err == nil || !strings.Contains(err.Error(), "stage badcov") {
		t.Errorf("failing stage error = %v, want it to name stage badcov", err)
	}
}
