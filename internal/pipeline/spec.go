package pipeline

// The wire form of a pipeline. A Spec is the JSON twin of a Builder
// program: stages carry exactly one kind-selecting payload each, edges are
// (from, to) pairs, and Build routes everything through the fluent
// Builder, so the wire layer inherits every structural check (typed edges,
// arity, acyclicity) instead of duplicating them. Malformed documents are
// errors, never panics — the decoder is fuzzed (FuzzSpec).

import (
	"bytes"
	"encoding/json"
	"fmt"

	"netdecomp/internal/cover"
	"netdecomp/internal/decomp"
)

// Spec is the JSON form of a pipeline: the body of POST /v1/pipeline and
// the document cmd/netdecomp -pipeline executes.
type Spec struct {
	Stages []StageSpec `json:"stages"`
	Edges  []EdgeSpec  `json:"edges,omitempty"`
}

// StageSpec declares one stage: an ID plus exactly one kind payload.
// Recolor/MIS/Coloring/Matching/Spanner take no parameters — their
// presence (any value, e.g. {}) selects the kind.
type StageSpec struct {
	ID string `json:"id"`

	Decompose *decomp.PlanSpec `json:"decompose,omitempty"`
	Recolor   *struct{}        `json:"recolor,omitempty"`
	MIS       *struct{}        `json:"mis,omitempty"`
	Coloring  *struct{}        `json:"coloring,omitempty"`
	Matching  *struct{}        `json:"matching,omitempty"`
	Spanner   *struct{}        `json:"spanner,omitempty"`
	Cover     *CoverSpec       `json:"cover,omitempty"`
}

// CoverSpec is the JSON form of a cover stage's options (cover.Options
// minus Session, which the executor threads).
type CoverSpec struct {
	W         int     `json:"w"`
	Algorithm string  `json:"algorithm,omitempty"`
	K         int     `json:"k,omitempty"`
	C         float64 `json:"c,omitempty"`
	Seed      uint64  `json:"seed,omitempty"`
}

// Options resolves the spec into cover build options.
func (sp CoverSpec) Options() cover.Options {
	return cover.Options{
		W:         sp.W,
		Algorithm: sp.Algorithm,
		K:         sp.K,
		C:         sp.C,
		Seed:      sp.Seed,
	}
}

// EdgeSpec is one typed dependency: To consumes From's value.
type EdgeSpec struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// stage resolves the spec's payload into a Stage, enforcing exactly one
// kind per stage.
func (sp StageSpec) stage() (Stage, error) {
	var (
		st Stage
		n  int
	)
	set := func(s Stage) {
		st = s
		n++
	}
	if sp.Decompose != nil {
		pl, err := sp.Decompose.Compile()
		if err != nil {
			return nil, fmt.Errorf("stage %q: %w", sp.ID, err)
		}
		set(Decompose(pl))
	}
	if sp.Recolor != nil {
		set(Recolor())
	}
	if sp.MIS != nil {
		set(MIS())
	}
	if sp.Coloring != nil {
		set(Coloring())
	}
	if sp.Matching != nil {
		set(Matching())
	}
	if sp.Spanner != nil {
		set(Spanner())
	}
	if sp.Cover != nil {
		set(Cover(sp.Cover.Options()))
	}
	switch n {
	case 1:
		return st, nil
	case 0:
		return nil, fmt.Errorf("stage %q: no kind set (want one of decompose, recolor, mis, coloring, matching, spanner, cover)", sp.ID)
	default:
		return nil, fmt.Errorf("stage %q: %d kinds set, want exactly one", sp.ID, n)
	}
}

// Build validates the spec and compiles it into an executable Pipeline.
func (s Spec) Build() (*Pipeline, error) {
	b := NewBuilder()
	for _, sp := range s.Stages {
		st, err := sp.stage()
		if err != nil {
			return nil, fmt.Errorf("pipeline: invalid: %w", err)
		}
		b.AddStage(sp.ID, st)
	}
	for _, e := range s.Edges {
		b.AddEdge(e.From, e.To)
	}
	return b.Build()
}

// ParseSpec decodes a JSON pipeline document strictly (unknown fields are
// errors) and returns the spec. It never panics on malformed input.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("pipeline spec: %w", err)
	}
	return s, nil
}
