package pipeline_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"netdecomp/internal/pipeline"
	"netdecomp/internal/session"
)

// specDoc is the canonical JSON pipeline the wire tests execute — the
// same decompose → recolor → {mis} + decompose → spanner + cover fan-out
// as fanoutPipeline, expressed as a Spec document.
const specDoc = `{
  "stages": [
    {"id": "dec", "decompose": {"algorithm": "elkin-neiman", "seed": 7, "forceComplete": true}},
    {"id": "re", "recolor": {}},
    {"id": "mis", "mis": {}},
    {"id": "col", "coloring": {}},
    {"id": "mat", "matching": {}},
    {"id": "sp", "spanner": {}},
    {"id": "cov", "cover": {"w": 1, "seed": 7}}
  ],
  "edges": [
    {"from": "dec", "to": "re"},
    {"from": "re", "to": "mis"},
    {"from": "re", "to": "col"},
    {"from": "re", "to": "mat"},
    {"from": "dec", "to": "sp"}
  ]
}`

// TestSpecMatchesBuilder is the codec contract: a JSON Spec builds the
// same DAG as the fluent Builder and executes to bit-identical results.
func TestSpecMatchesBuilder(t *testing.T) {
	g := testGraph(t, 300, 6)
	ctx := context.Background()

	s, err := pipeline.ParseSpec([]byte(specDoc))
	if err != nil {
		t.Fatal(err)
	}
	fromSpec, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	fromBuilder := fanoutPipeline(t, 7)
	if !reflect.DeepEqual(fromSpec.Levels(), fromBuilder.Levels()) {
		t.Errorf("spec levels %v differ from builder levels %v", fromSpec.Levels(), fromBuilder.Levels())
	}

	sess := session.New()
	defer sess.Close()
	resSpec, err := pipeline.Run(ctx, fromSpec, g, pipeline.WithSession(sess))
	if err != nil {
		t.Fatal(err)
	}
	resBuilder, err := pipeline.Run(ctx, fromBuilder, g, pipeline.WithSession(sess))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resultDigests(resSpec), resultDigests(resBuilder)) {
		t.Error("spec-built pipeline results differ from builder-built results")
	}
	// The two pipelines share plans and graph, so the second run's
	// decompose stage is a session cache hit — the dedup the wire layer
	// inherits for free.
	if !resBuilder.Stage("dec").CacheHit {
		t.Error("builder run after spec run: dec was not a cache hit")
	}
}

// TestSpecErrors pins the decode/validate failure modes: all errors, no
// panics.
func TestSpecErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"bad json", `{"stages": [`, "pipeline spec:"},
		{"unknown field", `{"stages": [], "bogus": 1}`, "unknown field"},
		{"no kind", `{"stages": [{"id": "a"}]}`, `stage "a": no kind set`},
		{"two kinds", `{"stages": [{"id": "a", "recolor": {}, "mis": {}}]}`, `stage "a": 2 kinds set`},
		{"bad algorithm", `{"stages": [{"id": "a", "decompose": {"algorithm": "nope"}}]}`, `stage "a"`},
		{"missing algorithm", `{"stages": [{"id": "a", "decompose": {}}]}`, "algorithm is required"},
		{"structural", `{"stages": [{"id": "a", "recolor": {}}]}`, "wants exactly one in-edge"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := pipeline.ParseSpec([]byte(tc.doc))
			if err == nil {
				_, err = s.Build()
			}
			if err == nil {
				t.Fatalf("want error mentioning %q, got success", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// FuzzSpec is the satellite-3 decoder fuzz target: arbitrary bytes
// through ParseSpec and Build must return errors, never panic.
func FuzzSpec(f *testing.F) {
	f.Add([]byte(specDoc))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"stages": []}`))
	f.Add([]byte(`{"stages": [{"id": "a", "decompose": {"algorithm": "mpx"}}]}`))
	f.Add([]byte(`{"stages": [{"id": "a", "cover": {"w": -5}}], "edges": [{"from": "a", "to": "a"}]}`))
	f.Add([]byte(`{"stages": [{"id": "", "spanner": {}}], "edges": [{"from": "x"}]}`))
	f.Add([]byte(`[1, 2, 3]`))
	f.Add([]byte(`null`))
	f.Add([]byte{0xff, 0xfe, '{'})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := pipeline.ParseSpec(data)
		if err != nil {
			return
		}
		// A decoded spec must validate without panicking; both outcomes of
		// Build are acceptable.
		_, _ = s.Build()
	})
}
