package pipeline_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"netdecomp/internal/decomp"
	"netdecomp/internal/graph"
	"netdecomp/internal/obs"
	"netdecomp/internal/pipeline"
)

// stall is a registrable decomposer that absorbs the whole request budget
// and then — unlike a well-behaved one — still returns a valid partition,
// so its level completes successfully after the deadline passed. That is
// exactly the shape that exposes whether the executor re-checks the
// budget between levels or burns workers on a doomed DAG.
type stall struct{ name string }

func (s stall) run(ctx context.Context, g graph.Interface, cfg decomp.Config) (*decomp.Partition, error) {
	<-ctx.Done()
	members := make([]int, g.N())
	for v := range members {
		members[v] = v
	}
	return &decomp.Partition{
		Algorithm: s.name,
		N:         g.N(),
		Clusters:  []decomp.Cluster{{Members: members}},
		ClusterOf: make([]int, g.N()),
		Colors:    1,
		Complete:  true,
		Mode:      decomp.StrongDiameter,
	}, nil
}

// TestRunStopsAtLevelBoundaryOnDeadline pins the per-level budget check:
// when the deadline expires during level 0, level 1 never dispatches —
// no StageStart for any downstream stage — and the run fails with the
// deadline error, counted in pipeline.deadline.stops.
func TestRunStopsAtLevelBoundaryOnDeadline(t *testing.T) {
	st := stall{name: "test/stall-deadline"}
	decomp.Register(decomp.Func{AlgorithmName: st.name, Run: st.run})
	pl, err := decomp.Compile(st.name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pipeline.NewBuilder().
		AddStage("dec", pipeline.Decompose(pl)).
		AddStage("re", pipeline.Recolor()).
		AddStage("mis", pipeline.MIS()).
		AddEdge("dec", "re").
		AddEdge("re", "mis").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t, 64, 9)
	reg := obs.NewRegistry()
	var mu sync.Mutex
	started := map[string]bool{}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	res, err := pipeline.Run(ctx, p, g,
		pipeline.WithRecorder(obs.New(reg, nil)),
		pipeline.WithObserver(func(ev pipeline.StageEvent) {
			if ev.Status == pipeline.StageStart {
				mu.Lock()
				started[ev.Stage] = true
				mu.Unlock()
			}
		}))
	if res != nil {
		t.Fatal("doomed run returned a result")
	}
	if !errors.Is(err, context.DeadlineExceeded) || !strings.Contains(err.Error(), "budget expired before level 1") {
		t.Fatalf("err = %v, want budget-expired-before-level-1 wrapping DeadlineExceeded", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if !started["dec"] {
		t.Fatal("level-0 stage never started")
	}
	if started["re"] || started["mis"] {
		t.Fatalf("downstream stages dispatched after expiry: %v", started)
	}
	var stops int64
	for _, c := range reg.Snapshot().Counters {
		if c.Name == "pipeline.deadline.stops" {
			stops = c.Value
		}
	}
	if stops != 1 {
		t.Fatalf("pipeline.deadline.stops = %d, want 1", stops)
	}
}
