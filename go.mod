module netdecomp

go 1.24
