package netdecomp_test

import (
	"context"
	"reflect"
	"testing"

	"netdecomp"
)

// TestUnifiedAPIEndToEnd drives the registry surface the way README.md
// does: pick an algorithm by name, decompose, verify, and feed every
// downstream consumer.
func TestUnifiedAPIEndToEnd(t *testing.T) {
	g := netdecomp.GnpConnected(netdecomp.NewRNG(1), 300, 0.015)
	ctx := context.Background()
	for _, name := range netdecomp.Algorithms() {
		name := name
		t.Run(name, func(t *testing.T) {
			d, err := netdecomp.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			p, err := d.Decompose(ctx, g, netdecomp.WithSeed(5), netdecomp.WithForceComplete())
			if err != nil {
				t.Fatal(err)
			}
			if rep := netdecomp.VerifyPartition(g, p); !rep.Valid() {
				t.Fatalf("verify: %v", rep.Err())
			}
			in, err := netdecomp.AppInputFromPartition(g, p)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := netdecomp.MIS(g, in); err != nil {
				t.Fatal(err)
			}
			if _, err := netdecomp.Coloring(g, in); err != nil {
				t.Fatal(err)
			}
			if _, err := netdecomp.Matching(g, in); err != nil {
				t.Fatal(err)
			}
			if _, err := netdecomp.BuildSpannerFrom(g, p); err != nil {
				t.Fatal(err)
			}
		})
	}
	if _, err := netdecomp.BuildCover(g, netdecomp.CoverOptions{W: 1, K: 3, Seed: 2, Algorithm: "mpx"}); err != nil {
		t.Fatal(err)
	}
}

// TestDeprecatedShimsBitIdentical pins the acceptance criterion: the
// legacy entry points and the registry produce identical clusters for
// equal seeds.
func TestDeprecatedShimsBitIdentical(t *testing.T) {
	g := netdecomp.GnpConnected(netdecomp.NewRNG(2), 250, 0.02)
	ctx := context.Background()

	dec, err := netdecomp.Decompose(g, netdecomp.Options{K: 4, C: 8, Seed: 11, ForceComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := netdecomp.MustGet("elkin-neiman").Decompose(ctx, g,
		netdecomp.WithK(4), netdecomp.WithC(8), netdecomp.WithSeed(11), netdecomp.WithForceComplete())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(netdecomp.PartitionFromDecomposition(dec).MemberLists(), p.MemberLists()) {
		t.Fatal("Decompose shim and registry disagree")
	}

	ls, err := netdecomp.LinialSaks(g, netdecomp.LSOptions{K: 4, Seed: 11, ForceComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	lp, err := netdecomp.MustGet("linial-saks").Decompose(ctx, g,
		netdecomp.WithK(4), netdecomp.WithSeed(11), netdecomp.WithForceComplete())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ls.MemberLists(), lp.MemberLists()) {
		t.Fatal("LinialSaks shim and registry disagree")
	}

	mr, err := netdecomp.MPX(g, netdecomp.MPXOptions{Beta: 0.3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := netdecomp.MustGet("mpx").Decompose(ctx, g,
		netdecomp.WithBeta(0.3), netdecomp.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mr.MemberLists(), mp.MemberLists()) {
		t.Fatal("MPX shim and registry disagree")
	}

	bc, err := netdecomp.BallCarving(g, netdecomp.BCOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	bp, err := netdecomp.MustGet("ball-carving").Decompose(ctx, g, netdecomp.WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bc.MemberLists(), bp.MemberLists()) {
		t.Fatal("BallCarving shim and registry disagree")
	}
}

// TestRegisterCustomDecomposer: applications can plug their own algorithm
// into the registry and every consumer picks it up.
func TestRegisterCustomDecomposer(t *testing.T) {
	// A trivial "one cluster per connected component" algorithm, built
	// from the ball-carving primitive with a huge K.
	netdecomp.RegisterDecomposer(netdecomp.NewDecomposer("test/whole-graph",
		func(ctx context.Context, g netdecomp.GraphInterface, _ netdecomp.DecomposerConfig) (*netdecomp.Partition, error) {
			inner, err := netdecomp.MustGet("ball-carving").Decompose(ctx, g, netdecomp.WithK(1))
			if err != nil {
				return nil, err
			}
			inner.Algorithm = "test/whole-graph"
			return inner, nil
		}))
	found := false
	for _, name := range netdecomp.Algorithms() {
		if name == "test/whole-graph" {
			found = true
		}
	}
	if !found {
		t.Fatal("custom algorithm not listed")
	}
	g := netdecomp.Grid(6, 6)
	p, err := netdecomp.MustGet("test/whole-graph").Decompose(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if p.Algorithm != "test/whole-graph" || !p.Complete {
		t.Fatalf("custom partition wrong: %v", p)
	}
	if rep := netdecomp.VerifyPartition(g, p); !rep.Valid() {
		t.Fatalf("custom partition invalid: %v", rep.Err())
	}
}

// TestObserverThroughFacade checks the streaming hook end to end.
func TestObserverThroughFacade(t *testing.T) {
	g := netdecomp.Grid(10, 10)
	var calls int
	p, err := netdecomp.MustGet("elkin-neiman/dist").Decompose(context.Background(), g,
		netdecomp.WithSeed(3), netdecomp.WithScheduler(true, 4),
		netdecomp.WithObserver(func(r netdecomp.RoundStats) { calls++ }))
	if err != nil {
		t.Fatal(err)
	}
	if calls != p.Metrics.Rounds {
		t.Fatalf("observer called %d times for %d rounds", calls, p.Metrics.Rounds)
	}
}

// TestDecomposeCancelledThroughFacade checks ctx plumbing end to end.
func TestDecomposeCancelledThroughFacade(t *testing.T) {
	g := netdecomp.Grid(8, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := netdecomp.MustGet("elkin-neiman").Decompose(ctx, g); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
