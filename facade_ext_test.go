package netdecomp_test

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"netdecomp"
)

// TestFacadeCoverAndSpanner exercises the derived-structure exports.
func TestFacadeCoverAndSpanner(t *testing.T) {
	g := netdecomp.GnpConnected(netdecomp.NewRNG(21), 200, 0.02)

	c, err := netdecomp.BuildCover(g, netdecomp.CoverOptions{W: 1, K: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Verify(g); err != nil {
		t.Fatal(err)
	}
	if c.Degree > c.Colors {
		t.Fatalf("cover degree %d exceeds chi %d", c.Degree, c.Colors)
	}

	dec, err := netdecomp.Decompose(g, netdecomp.Options{K: 4, C: 8, Seed: 2, ForceComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := netdecomp.BuildSpanner(g, dec)
	if err != nil {
		t.Fatal(err)
	}
	if !sp.G.IsConnected() {
		t.Fatal("spanner disconnected")
	}
	if _, _, err := sp.StretchSample(g, 1, 20); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeGraphIO exercises the interchange round trip.
func TestFacadeGraphIO(t *testing.T) {
	g := netdecomp.Grid(6, 6)
	var buf bytes.Buffer
	if err := netdecomp.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := netdecomp.ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatal("graph IO round trip changed the graph")
	}
}

// TestFacadeExtraBaselines exercises RandomColoring and MPXDistributed.
func TestFacadeExtraBaselines(t *testing.T) {
	g := netdecomp.RingOfCliques(6, 5)
	col, err := netdecomp.RandomColoring(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if col.NumColors > g.MaxDegree()+1 {
		t.Fatalf("random coloring used %d colors", col.NumColors)
	}
	a, err := netdecomp.MPX(g, netdecomp.MPXOptions{Beta: 0.3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := netdecomp.MPXDistributed(g, netdecomp.MPXOptions{Beta: 0.3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.CutEdges != b.CutEdges || len(a.Clusters) != len(b.Clusters) {
		t.Fatal("MPX implementations disagree through the facade")
	}
}

// TestFacadeBallCarving exercises the sequential yardstick baseline.
func TestFacadeBallCarving(t *testing.T) {
	g := netdecomp.Grid(10, 10)
	p, err := netdecomp.BallCarving(g, netdecomp.BCOptions{K: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Complete {
		t.Fatal("ball carving incomplete")
	}
	if sd, disc := p.StrongDiameter(g); disc != 0 || sd > 14 {
		t.Fatalf("ball carving diameter %d (disc %d)", sd, disc)
	}
}

// TestFacadeViewDecompose drives the CSR-redesign surface end to end: take
// a zero-copy view of a subgraph, decompose the view through the registry,
// and verify the partition against the view — plus fingerprint stability
// across rebuild paths.
func TestFacadeViewDecompose(t *testing.T) {
	g := netdecomp.GnpConnected(netdecomp.NewRNG(31), 300, 0.01)

	// A view over a vertex range, and the component view of vertex 0.
	members := make([]int, 150)
	for i := range members {
		members[i] = i
	}
	view, orig, err := netdecomp.InducedSubgraph(g, members)
	if err != nil {
		t.Fatal(err)
	}
	if view.N() != 150 || orig[42] != 42 {
		t.Fatalf("view shape wrong: n=%d orig[42]=%d", view.N(), orig[42])
	}
	comp := netdecomp.ComponentOf(g, 0)
	if comp.N() != g.N() {
		t.Fatalf("GnpConnected must be connected: component %d of %d", comp.N(), g.N())
	}

	d := netdecomp.MustGet("elkin-neiman")
	p, err := d.Decompose(nil, view, netdecomp.WithSeed(5), netdecomp.WithForceComplete())
	if err != nil {
		t.Fatal(err)
	}
	if !p.Complete || p.N != view.N() {
		t.Fatalf("view decomposition wrong: %v", p)
	}
	if rep := netdecomp.VerifyPartition(view, p); !rep.Valid() {
		t.Fatalf("view partition invalid: %v", rep.Err())
	}

	// The same subgraph decomposed as a materialized Graph must give the
	// same clusters: views are transparent to the algorithms.
	p2, err := d.Decompose(nil, view.Materialize(), netdecomp.WithSeed(5), netdecomp.WithForceComplete())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Clusters) != len(p2.Clusters) || p.Colors != p2.Colors {
		t.Fatalf("view vs materialized decomposition differ: %v vs %v", p, p2)
	}

	// Fingerprints: stable across rebuild paths, different for the sub- and
	// host graph.
	if netdecomp.GraphFingerprint(view) != netdecomp.GraphFingerprint(view.Materialize()) {
		t.Fatal("view and materialized fingerprints differ")
	}
	if netdecomp.GraphFingerprint(view) == netdecomp.GraphFingerprint(g) {
		t.Fatal("subgraph shares the host graph's fingerprint")
	}
	rebuilt := netdecomp.FromEdgeStream(g.N(), func(yield func(u, v int)) {
		for u, v := range g.EdgeSeq() {
			yield(u, v)
		}
	})
	if netdecomp.GraphFingerprint(rebuilt) != netdecomp.GraphFingerprint(g) {
		t.Fatal("stream rebuild changed the fingerprint")
	}
}

// TestFacadePipeline exercises the pipeline exports end to end: build a
// typed stage DAG through the facade, run it with a session attached, and
// check the warm rerun rides the cache while the observer sees every
// stage.
func TestFacadePipeline(t *testing.T) {
	ctx := context.Background()
	g := netdecomp.GnpConnected(netdecomp.NewRNG(17), 250, 0.02)

	pl, err := netdecomp.Compile("elkin-neiman",
		netdecomp.WithSeed(11), netdecomp.WithForceComplete())
	if err != nil {
		t.Fatal(err)
	}
	p, err := netdecomp.NewPipeline().
		AddStage("dec", netdecomp.DecomposeStage(pl)).
		AddStage("re", netdecomp.RecolorStage()).
		AddStage("mis", netdecomp.MISStage()).
		AddStage("sp", netdecomp.SpannerStage()).
		AddEdge("dec", "re").
		AddEdge("re", "mis").
		AddEdge("dec", "sp").
		Build()
	if err != nil {
		t.Fatal(err)
	}

	s := netdecomp.NewSession(netdecomp.WithSessionCacheSize(16))
	defer s.Close()
	var events int
	res, err := netdecomp.RunPipeline(ctx, p, g,
		netdecomp.PipelineSession(s), netdecomp.PipelineWorkers(2),
		netdecomp.PipelineObserver(func(netdecomp.PipelineStageEvent) { events++ }))
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits != 0 || events != 8 {
		t.Fatalf("cold run: hits=%d events=%d, want 0 hits, 8 events", res.CacheHits, events)
	}
	direct, err := netdecomp.RunPlan(ctx, pl, g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Partition("dec"), direct) {
		t.Fatal("pipeline decompose differs from direct plan run")
	}
	if mis := res.Stage("mis").MIS; mis == nil || mis.Size == 0 {
		t.Fatal("pipeline MIS empty")
	}
	warm, err := netdecomp.RunPipeline(ctx, p, g, netdecomp.PipelineSession(s))
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != 1 {
		t.Fatalf("warm rerun cache hits = %d, want 1", warm.CacheHits)
	}

	// The JSON wire form compiles to the same DAG shape.
	spec, err := netdecomp.ParsePipelineSpec([]byte(`{
		"stages": [
			{"id": "dec", "decompose": {"algorithm": "elkin-neiman", "seed": 11, "forceComplete": true}},
			{"id": "re", "recolor": {}},
			{"id": "mis", "mis": {}},
			{"id": "sp", "spanner": {}}
		],
		"edges": [
			{"from": "dec", "to": "re"},
			{"from": "re", "to": "mis"},
			{"from": "dec", "to": "sp"}
		]}`))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Levels(), p2.Levels()) {
		t.Fatalf("spec levels %v differ from builder levels %v", p2.Levels(), p.Levels())
	}
}

// TestFacadePlanSession exercises the Plan/Session exports end to end:
// compile, direct plan run, session serving with cache hits, the batch
// API, and derived structures riding the session cache.
func TestFacadePlanSession(t *testing.T) {
	ctx := context.Background()
	g := netdecomp.GnpConnected(netdecomp.NewRNG(31), 300, 0.02)

	pl, err := netdecomp.Compile("elkin-neiman",
		netdecomp.WithSeed(4), netdecomp.WithForceComplete())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := netdecomp.RunPlan(ctx, pl, g)
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := netdecomp.MustGet("elkin-neiman").Decompose(ctx, g,
		netdecomp.WithSeed(4), netdecomp.WithForceComplete())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, oneShot) {
		t.Fatal("Compile+RunPlan differs from one-shot Decompose")
	}

	s := netdecomp.NewSession(netdecomp.WithSessionWorkers(2),
		netdecomp.WithSessionCacheSize(16))
	defer s.Close()
	cold, err := s.Run(ctx, pl, g)
	if err != nil {
		t.Fatal(err)
	}
	warm := s.Submit(ctx, pl, g)
	warmP, err := warm.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit() {
		t.Error("second identical job was not a cache hit")
	}
	if !reflect.DeepEqual(cold, warmP) || !reflect.DeepEqual(cold, direct) {
		t.Error("session results differ from direct plan run")
	}
	if st := s.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}

	reqs := []netdecomp.SessionRequest{
		{Plan: pl, Graph: g},
		{Plan: pl.WithSeed(5), Graph: g},
	}
	seen := 0
	for res := range s.SubmitAll(ctx, reqs) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		seen++
	}
	if seen != len(reqs) {
		t.Fatalf("SubmitAll delivered %d results, want %d", seen, len(reqs))
	}

	sp, err := netdecomp.BuildSpannerFromPlan(ctx, g, s, pl)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Edges == 0 {
		t.Error("empty spanner")
	}
	before := s.Stats().Misses
	if _, err := netdecomp.BuildCover(g, netdecomp.CoverOptions{W: 1, K: 3, Seed: 2, Session: s}); err != nil {
		t.Fatal(err)
	}
	if _, err := netdecomp.BuildCover(g, netdecomp.CoverOptions{W: 1, K: 3, Seed: 2, Session: s}); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.Misses != before+1 {
		t.Errorf("repeated cover build re-decomposed: misses %d -> %d (want one new miss, then a hit)",
			before, after.Misses)
	}
}
