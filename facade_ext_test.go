package netdecomp_test

import (
	"bytes"
	"testing"

	"netdecomp"
)

// TestFacadeCoverAndSpanner exercises the derived-structure exports.
func TestFacadeCoverAndSpanner(t *testing.T) {
	g := netdecomp.GnpConnected(netdecomp.NewRNG(21), 200, 0.02)

	c, err := netdecomp.BuildCover(g, netdecomp.CoverOptions{W: 1, K: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Verify(g); err != nil {
		t.Fatal(err)
	}
	if c.Degree > c.Colors {
		t.Fatalf("cover degree %d exceeds chi %d", c.Degree, c.Colors)
	}

	dec, err := netdecomp.Decompose(g, netdecomp.Options{K: 4, C: 8, Seed: 2, ForceComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := netdecomp.BuildSpanner(g, dec)
	if err != nil {
		t.Fatal(err)
	}
	if !sp.G.IsConnected() {
		t.Fatal("spanner disconnected")
	}
	if _, _, err := sp.StretchSample(g, 1, 20); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeGraphIO exercises the interchange round trip.
func TestFacadeGraphIO(t *testing.T) {
	g := netdecomp.Grid(6, 6)
	var buf bytes.Buffer
	if err := netdecomp.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := netdecomp.ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatal("graph IO round trip changed the graph")
	}
}

// TestFacadeExtraBaselines exercises RandomColoring and MPXDistributed.
func TestFacadeExtraBaselines(t *testing.T) {
	g := netdecomp.RingOfCliques(6, 5)
	col, err := netdecomp.RandomColoring(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if col.NumColors > g.MaxDegree()+1 {
		t.Fatalf("random coloring used %d colors", col.NumColors)
	}
	a, err := netdecomp.MPX(g, netdecomp.MPXOptions{Beta: 0.3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := netdecomp.MPXDistributed(g, netdecomp.MPXOptions{Beta: 0.3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.CutEdges != b.CutEdges || len(a.Clusters) != len(b.Clusters) {
		t.Fatal("MPX implementations disagree through the facade")
	}
}

// TestFacadeBallCarving exercises the sequential yardstick baseline.
func TestFacadeBallCarving(t *testing.T) {
	g := netdecomp.Grid(10, 10)
	p, err := netdecomp.BallCarving(g, netdecomp.BCOptions{K: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Complete {
		t.Fatal("ball carving incomplete")
	}
	if sd, disc := p.StrongDiameter(g); disc != 0 || sd > 14 {
		t.Fatalf("ball carving diameter %d (disc %d)", sd, disc)
	}
}
