// Command session walks through the Plan/Session execution API: compile a
// decomposition configuration once, then serve it many times — repeats
// from the result cache, concurrent duplicates deduplicated in flight,
// seed sweeps as one streamed batch, and derived structures (covers,
// spanners) riding the same cache.
//
// Run with: go run ./examples/session
package main

import (
	"context"
	"fmt"
	"log"

	"netdecomp"
)

func main() {
	ctx := context.Background()
	g := netdecomp.GnpConnected(netdecomp.NewRNG(42), 2048, 8.0/2047)
	fmt.Printf("graph: %v (fingerprint %016x)\n\n", g, netdecomp.GraphFingerprint(g))

	// 1. Compile once. The Plan is immutable and validated; its PlanKey is
	// a stable digest of (algorithm, semantic options) — seed excluded, so
	// one compile covers a whole sweep.
	pl, err := netdecomp.Compile("elkin-neiman",
		netdecomp.WithK(8), netdecomp.WithForceComplete())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %s (plankey %016x)\n\n", pl.Name(), pl.PlanKey())

	// 2. A session serves compiled plans: bounded worker pool, in-flight
	// dedup, LRU result cache keyed on (fingerprint, plankey, seed).
	s := netdecomp.NewSession(netdecomp.WithSessionCacheSize(128))
	defer s.Close()

	cold, err := s.Run(ctx, pl.WithSeed(7), g)
	if err != nil {
		log.Fatal(err)
	}
	warm, err := s.Run(ctx, pl.WithSeed(7), g) // identical triple: cache hit
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold: %v\n", cold)
	fmt.Printf("warm: %v (served from cache; results are defensive clones)\n", warm)
	fmt.Printf("stats: %+v\n\n", s.Stats())

	// 3. Concurrent identical requests are run once and shared
	// (singleflight): a thundering herd costs one decomposition. Submit
	// returns immediately, so all eight jobs are in flight before the
	// first Wait — seven attach to the one execution.
	herd := netdecomp.NewSession(netdecomp.WithSessionCacheSize(0)) // cache off: pure dedup
	jobs := make([]*netdecomp.SessionJob, 8)
	for i := range jobs {
		jobs[i] = herd.Submit(ctx, pl.WithSeed(99), g)
	}
	for _, j := range jobs {
		if _, err := j.Wait(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("herd of 8 identical jobs: %+v\n\n", herd.Stats())
	herd.Close()

	// 4. Seed sweeps stream through SubmitAll: one plan, n derived seeds,
	// results arriving in completion order with their request index.
	reqs := make([]netdecomp.SessionRequest, 8)
	for i := range reqs {
		reqs[i] = netdecomp.SessionRequest{Plan: pl.WithSeed(uint64(i)), Graph: g}
	}
	colors := make([]int, len(reqs))
	for res := range s.SubmitAll(ctx, reqs) {
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		colors[res.Index] = res.Partition.Colors
	}
	fmt.Printf("sweep colors by seed: %v\n", colors)
	fmt.Printf("stats: %+v\n\n", s.Stats())

	// 5. Derived structures share the session's cache: the spanner's
	// decomposition below is the seed-7 run already cached in step 2, and
	// repeated cover builds reuse their power-graph decomposition.
	sp, err := netdecomp.BuildSpannerFromPlan(ctx, g, s, pl.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spanner from cached decomposition: %d edges (%d tree + %d bridges)\n",
		sp.Edges, sp.TreeEdges, sp.BridgeEdges)
	for i := 0; i < 2; i++ {
		cov, err := netdecomp.BuildCover(g, netdecomp.CoverOptions{W: 1, Seed: 7, Session: s})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cover build %d: %d sets, degree %d\n", i+1, len(cov.Clusters), cov.Degree)
	}
	fmt.Printf("final stats: %+v\n", s.Stats())
}
