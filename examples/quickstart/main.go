// Quickstart: build a random graph, pick an algorithm from the unified
// registry, compute a strong (O(log n), O(log n)) network decomposition,
// verify it against the paper's bounds, and print a summary. This is the
// minimal end-to-end use of the public API.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"netdecomp"
)

func main() {
	// A connected sparse random graph on 2048 vertices.
	g := netdecomp.GnpConnected(netdecomp.NewRNG(42), 2048, 0.004)
	fmt.Printf("input graph: n=%d m=%d maxDeg=%d\n", g.N(), g.M(), g.MaxDegree())

	// Every algorithm is one registry lookup away; see
	// netdecomp.Algorithms() for the full list.
	d, err := netdecomp.Get("elkin-neiman")
	if err != nil {
		log.Fatal(err)
	}

	// The headline configuration: k = ceil(ln n) gives strong diameter
	// O(log n), O(log n) colors, O(log^2 n) rounds (Theorem 1).
	k := int(math.Ceil(math.Log(float64(g.N()))))
	p, err := d.Decompose(context.Background(), g,
		netdecomp.WithK(k),
		netdecomp.WithC(8), // failure probability at most 3/8
		netdecomp.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("decomposition: %d clusters, %d colors, %d phases (budget %d)\n",
		len(p.Clusters), p.Colors, p.PhasesUsed, p.PhaseBudget)
	fmt.Printf("distributed cost: %d rounds, %d messages, largest message %d words\n",
		p.Metrics.Rounds, p.Metrics.Messages, p.Metrics.MaxMessageWords)
	fmt.Printf("complete: %v (theorem guarantees this w.p. >= 1 - 3/c = %.3f)\n",
		p.Complete, 1-3.0/8)

	// Verify every invariant: disjoint connected clusters, proper
	// supergraph coloring, and measure the diameters.
	rep := netdecomp.VerifyPartition(g, p)
	if !rep.Valid() {
		log.Fatalf("verification failed: %v", rep.Err())
	}
	fmt.Printf("verified: strong diameter %d (bound 2k-2 = %d), %d colors\n",
		rep.MaxStrongDiameter, 2*k-2, rep.Colors)

	// The largest cluster, for a feel of the output.
	big := 0
	for i := range p.Clusters {
		if len(p.Clusters[i].Members) > len(p.Clusters[big].Members) {
			big = i
		}
	}
	c := p.Clusters[big]
	fmt.Printf("largest cluster: %d vertices, center %d, carved at phase %d, color %d\n",
		len(c.Members), c.Center, c.Phase, c.Color)
}
