// Tradeoff: sweep the paper's parameter space on one graph. Theorem 1
// trades a small strong diameter (2k−2) for many colors; Theorem 3 inverts
// the tradeoff (λ colors, diameter ~(cn)^{1/λ}); Theorem 2 keeps Theorem
// 1's diameter while lowering the color bound to 4k(cn)^{1/k}. The example
// prints the measured frontier, which is figure F2 of EXPERIMENTS.md in
// miniature.
package main

import (
	"fmt"
	"log"

	"netdecomp"
)

func main() {
	g := netdecomp.GnpConnected(netdecomp.NewRNG(5), 1024, 0.006)
	fmt.Printf("graph: n=%d m=%d\n\n", g.N(), g.M())
	fmt.Printf("%-10s %-8s %-10s %-8s %-8s %-8s\n", "regime", "param", "diam", "bound", "colors", "rounds")

	for _, k := range []int{2, 3, 4, 6, 8} {
		o := netdecomp.Options{Variant: netdecomp.Theorem1, K: k, C: 8, Seed: 9, ForceComplete: true}
		report(g, o, fmt.Sprintf("T1 k=%d", k))
	}
	for _, k := range []int{2, 4} {
		o := netdecomp.Options{Variant: netdecomp.Theorem2, K: k, C: 8, Seed: 9, ForceComplete: true}
		report(g, o, fmt.Sprintf("T2 k=%d", k))
	}
	for _, lambda := range []int{1, 2, 3} {
		o := netdecomp.Options{Variant: netdecomp.Theorem3, Lambda: lambda, C: 8, Seed: 9}
		report(g, o, fmt.Sprintf("T3 λ=%d", lambda))
	}

	fmt.Println("\nreading down: diameter grows as colors shrink — the inverse tradeoff of Theorems 1 and 3.")
}

func report(g *netdecomp.Graph, o netdecomp.Options, label string) {
	dec, err := netdecomp.Decompose(g, o)
	if err != nil {
		log.Fatal(err)
	}
	rep := netdecomp.Verify(g, dec)
	if !rep.Valid() {
		log.Fatalf("%s: %v", label, rep.Err())
	}
	dBound, err := netdecomp.TheoremDiameterBound(g.N(), o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %-8s %-10d %-8d %-8d %-8d\n",
		label, "", rep.MaxStrongDiameter, dBound, dec.Colors, dec.Rounds)
}
