// Covers and spanners: the two derived structures Section 1.1 of the
// paper connects network decomposition to. A W-neighborhood cover (every
// ball B(v, W) inside one cover set, few sets per vertex) falls out of
// decomposing the power graph G^{2W+1} and expanding clusters by W; a
// sparse skeleton spanner falls out of keeping each cluster's BFS tree
// plus one bridge per adjacent cluster pair.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"netdecomp"
)

func main() {
	g := netdecomp.GnpConnected(netdecomp.NewRNG(13), 600, 0.008)
	fmt.Printf("graph: n=%d m=%d\n\n", g.N(), g.M())

	// --- Neighborhood covers for W = 1, 2 ---
	// The power-graph decomposition underneath can come from any
	// registered algorithm (CoverOptions.Algorithm); the default is
	// elkin-neiman.
	for _, w := range []int{1, 2} {
		c, err := netdecomp.BuildCover(g, netdecomp.CoverOptions{W: w, K: 4, Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		diam, err := c.Verify(g) // checks every ball is covered
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cover W=%d: %3d sets, degree %d (≤ χ=%d), max set diameter %d — every B(v,%d) covered\n",
			w, len(c.Clusters), c.Degree, c.Colors, diam, w)
	}

	// --- Skeleton spanner ---
	k := int(math.Ceil(math.Log(float64(g.N()))))
	p, err := netdecomp.MustGet("elkin-neiman").Decompose(context.Background(), g,
		netdecomp.WithK(k), netdecomp.WithC(8), netdecomp.WithSeed(5),
		netdecomp.WithForceComplete())
	if err != nil {
		log.Fatal(err)
	}
	sp, err := netdecomp.BuildSpannerFrom(g, p)
	if err != nil {
		log.Fatal(err)
	}
	maxStretch, meanStretch, err := sp.StretchSample(g, 7, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nspanner: %d of %d edges kept (%.1f%%) = %d tree + %d bridges\n",
		sp.Edges, g.M(), 100*float64(sp.Edges)/float64(g.M()), sp.TreeEdges, sp.BridgeEdges)
	fmt.Printf("stretch on 50 sampled pairs: max %.2f, mean %.2f; spanner connected: %v\n",
		maxStretch, meanStretch, sp.G.IsConnected())
}
