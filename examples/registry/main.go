// Registry tour: the unified Decomposer API in one program. Every
// algorithm the repository implements is registered under a string key
// and reached through the same Decompose call; the single Partition
// result type feeds the verifier, the symmetry-breaking applications and
// the spanner builder regardless of which algorithm produced it. The
// example also demonstrates the two execution-context hooks: a per-round
// Observer streaming CONGEST traffic, and context cancellation.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"netdecomp"
)

func main() {
	g := netdecomp.GnpConnected(netdecomp.NewRNG(17), 1200, 0.005)
	fmt.Printf("graph: n=%d m=%d\n\n", g.N(), g.M())

	// --- Head-to-head: every registered algorithm, one loop ---
	fmt.Printf("%-22s %-6s %-9s %-7s %-7s %-7s %-9s %-6s\n",
		"algorithm", "mode", "clusters", "colors", "sdiam", "rounds", "messages", "valid")
	for _, name := range netdecomp.Algorithms() {
		d, err := netdecomp.Get(name)
		if err != nil {
			log.Fatal(err)
		}
		p, err := d.Decompose(context.Background(), g,
			netdecomp.WithSeed(7), netdecomp.WithForceComplete())
		if err != nil {
			log.Fatal(err)
		}
		sd, disc := p.StrongDiameter(g)
		sdCell := fmt.Sprintf("%d", sd)
		if disc > 0 {
			sdCell = "inf"
		}
		fmt.Printf("%-22s %-6s %-9d %-7d %-7s %-7d %-9d %-6v\n",
			name, p.Mode, len(p.Clusters), p.Colors, sdCell,
			p.Metrics.Rounds, p.Metrics.Messages, netdecomp.VerifyPartition(g, p).Valid())
	}

	// --- One partition, every consumer ---
	p, err := netdecomp.MustGet("mpx").Decompose(context.Background(), g,
		netdecomp.WithBeta(0.3), netdecomp.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	in, err := netdecomp.AppInputFromPartition(g, p) // recolors the single-class MPX partition
	if err != nil {
		log.Fatal(err)
	}
	mis, err := netdecomp.MIS(g, in)
	if err != nil {
		log.Fatal(err)
	}
	sp, err := netdecomp.BuildSpannerFrom(g, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMPX partition reused downstream: MIS of %d vertices, spanner of %d edges (input %d)\n",
		mis.Size, sp.Edges, g.M())

	// --- Observer: streaming per-round traffic from the engine ---
	busiest := netdecomp.RoundStats{}
	calls := 0
	_, err = netdecomp.MustGet("elkin-neiman/dist").Decompose(context.Background(), g,
		netdecomp.WithSeed(7), netdecomp.WithScheduler(true, 0),
		netdecomp.WithObserver(func(r netdecomp.RoundStats) {
			calls++
			if r.Messages > busiest.Messages {
				busiest = r
			}
		}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("observer saw %d engine rounds; busiest: round %d with %d messages (%d words)\n",
		calls, busiest.Round, busiest.Messages, busiest.Words)

	// --- Cancellation: a deadline stops the run at the next barrier ---
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if _, err := netdecomp.MustGet("elkin-neiman").Decompose(ctx, g); err != nil {
		fmt.Printf("cancelled run returned: %v\n", err)
	}
}
