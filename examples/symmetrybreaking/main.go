// Symmetry breaking: the original motivation for network decomposition
// (Awerbuch et al. 1989, and Section 1.1 of Elkin–Neiman). Once a (D, χ)
// decomposition is in hand, maximal independent set, (Δ+1)-coloring and
// maximal matching all fall in O(D·χ) distributed rounds by processing the
// color classes one after another — clusters of one class are pairwise
// non-adjacent, so they are solved in parallel, each by a local
// collect/solve/disseminate in O(D) rounds.
//
// The example runs all three applications on one decomposition of a random
// graph and compares the MIS cost against Luby's direct algorithm.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"netdecomp"
)

func main() {
	g := netdecomp.GnpConnected(netdecomp.NewRNG(3), 1500, 0.004)
	fmt.Printf("graph: n=%d m=%d maxDeg=%d\n", g.N(), g.M(), g.MaxDegree())

	// Applications need a total partition, so force completion (the
	// probability any extra phases are needed is at most 1/c).
	k := int(math.Ceil(math.Log(float64(g.N()))))
	p, err := netdecomp.MustGet("elkin-neiman").Decompose(context.Background(), g,
		netdecomp.WithK(k), netdecomp.WithC(8), netdecomp.WithSeed(11),
		netdecomp.WithForceComplete())
	if err != nil {
		log.Fatal(err)
	}
	rep := netdecomp.VerifyPartition(g, p)
	if !rep.Valid() {
		log.Fatalf("bad decomposition: %v", rep.Err())
	}
	fmt.Printf("decomposition: D=%d chi=%d (D*chi=%d), built in %d rounds\n",
		rep.MaxStrongDiameter, p.Colors, rep.MaxStrongDiameter*p.Colors, p.Metrics.Rounds)

	// Any registered algorithm's Partition feeds the same applications.
	in, err := netdecomp.AppInputFromPartition(g, p)
	if err != nil {
		log.Fatal(err)
	}

	mis, err := netdecomp.MIS(g, in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MIS       : %5d vertices in %4d rounds (O(D*chi) sweep)\n", mis.Size, mis.Rounds)

	col, err := netdecomp.Coloring(g, in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coloring  : %5d colors  in %4d rounds (Δ+1 = %d allowed)\n",
		col.NumColors, col.Rounds, g.MaxDegree()+1)

	mat, err := netdecomp.Matching(g, in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matching  : %5d edges   in %4d rounds (%d propose/accept iterations)\n",
		mat.Size, mat.Rounds, mat.Proposals)

	luby, err := netdecomp.LubyMIS(g, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Luby MIS  : %5d vertices in %4d rounds (direct randomized baseline)\n",
		luby.Size, luby.Rounds)

	fmt.Println("\nall three outputs are verified maximal/proper by internal/verify in the test suite;")
	fmt.Println("the decomposition pays its round cost once and then amortizes it across every application.")
}
