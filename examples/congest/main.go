// CONGEST trace: run the decomposition as a true message-passing program
// on the synchronous engine (one goroutine pool, barrier per round) and
// inspect the per-round traffic. The point of the paper's Section 2
// CONGEST argument is that forwarding only the top two shifted values per
// round suffices, so every message stays within O(1) words — the trace
// prints the observed maximum (4 words: two (center, value) entries) and
// the busiest rounds.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"netdecomp"
	"netdecomp/internal/core"
	"netdecomp/internal/dist"
	"netdecomp/internal/gen"
	"netdecomp/internal/randx"
)

func main() {
	g := gen.GnpConnected(randx.New(8), 800, 0.008)
	fmt.Printf("graph: n=%d m=%d\n", g.N(), g.M())

	k := int(math.Ceil(math.Log(float64(g.N()))))
	opts := core.Options{K: k, C: 8, Seed: 21}

	// Run the node program on the parallel scheduler with per-round stats.
	p, metrics, err := core.RunDistributedWithMetrics(context.Background(), g, opts, dist.Options{
		Parallel:     true,
		RecordRounds: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decomposition: %d clusters, %d colors, complete=%v\n",
		len(p.Clusters), p.Colors, p.Complete)
	fmt.Printf("engine: %d rounds, %d messages, %d words total, max message %d words\n",
		metrics.Rounds, metrics.Messages, metrics.Words, metrics.MaxMessageWords)

	// The same run through the sequential reference must agree exactly.
	ref, err := netdecomp.Decompose(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cross-check vs sequential simulation: clusters %d==%d, messages %d==%d\n",
		len(ref.Clusters), len(p.Clusters), ref.Messages, p.Messages)

	// Busiest rounds of the execution.
	fmt.Println("\nbusiest rounds (phase boundaries carry the initial broadcasts):")
	top := topRounds(metrics.PerRound, 5)
	for _, r := range top {
		bar := ""
		for i := int64(0); i < r.Messages/500; i++ {
			bar += "#"
		}
		fmt.Printf("  round %4d: %6d msgs %7d words active=%4d %s\n",
			r.Round, r.Messages, r.Words, r.Active, bar)
	}
}

// topRounds returns the numMax rounds with the most messages, in round order.
func topRounds(rounds []dist.RoundStats, numMax int) []dist.RoundStats {
	out := make([]dist.RoundStats, 0, numMax)
	for _, r := range rounds {
		if len(out) < numMax {
			out = append(out, r)
			continue
		}
		minIdx := 0
		for i := range out {
			if out[i].Messages < out[minIdx].Messages {
				minIdx = i
			}
		}
		if r.Messages > out[minIdx].Messages {
			out[minIdx] = r
		}
	}
	// Restore round order.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].Round < out[i].Round {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}
