// Command pipeline walks through the typed DAG orchestration API: compose
// compiled plans and derived-structure builders into one validated
// pipeline, execute it level-parallel through a session, re-run it warm to
// watch the cache short-circuit untouched stages, and read the per-stage
// latency profile back out of the telemetry registry.
//
// Run with: go run ./examples/pipeline
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"

	"netdecomp"
)

func main() {
	ctx := context.Background()
	g := netdecomp.GnpConnected(netdecomp.NewRNG(42), 2048, 8.0/2047)
	fmt.Printf("graph: %v (fingerprint %016x)\n\n", g, netdecomp.GraphFingerprint(g))

	// 1. Compile the plans the DAG's decompose stages will execute. Plans
	// are immutable, so one compile serves any number of stages.
	pl, err := netdecomp.Compile("elkin-neiman",
		netdecomp.WithK(8), netdecomp.WithSeed(7), netdecomp.WithForceComplete())
	if err != nil {
		log.Fatal(err)
	}

	// 2. Build the DAG: decompose the graph, recolor the partition into an
	// application input feeding MIS and coloring, build its sparse
	// skeleton, and decompose *that* skeleton again — a derived graph
	// flowing through a typed edge. A neighborhood cover of the input
	// graph rides along with no dependencies at all. Build validates edge
	// types, stage arity and acyclicity up front.
	p, err := netdecomp.NewPipeline().
		AddStage("dec", netdecomp.DecomposeStage(pl)).
		AddStage("re", netdecomp.RecolorStage()).
		AddStage("mis", netdecomp.MISStage()).
		AddStage("col", netdecomp.ColoringStage()).
		AddStage("sp", netdecomp.SpannerStage()).
		AddStage("dec2", netdecomp.DecomposeStage(pl.WithSeed(8))).
		AddStage("cov", netdecomp.CoverStage(netdecomp.CoverOptions{W: 1, Seed: 7})).
		AddEdge("dec", "re").
		AddEdge("re", "mis").
		AddEdge("re", "col").
		AddEdge("dec", "sp").
		AddEdge("sp", "dec2").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	for lvl, ids := range p.Levels() {
		fmt.Printf("level %d: %s\n", lvl, strings.Join(ids, ", "))
	}
	fmt.Println()

	// 3. Execute with a session and a recorder attached: stages within a
	// level run in parallel, decompose stages ride the session cache, and
	// every stage reports a latency histogram into the registry.
	s := netdecomp.NewSession(netdecomp.WithSessionCacheSize(64))
	defer s.Close()
	reg := netdecomp.NewMetricsRegistry()
	rec := netdecomp.NewRecorder(reg, nil)
	exec := netdecomp.NewPipelineExecutor(
		netdecomp.PipelineSession(s), netdecomp.PipelineRecorder(rec),
		netdecomp.PipelineObserver(func(ev netdecomp.PipelineStageEvent) {
			if ev.Status == netdecomp.StageDone {
				fmt.Printf("  [observer] %-5s done in %.1fms (cache hit: %v)\n",
					ev.Stage, float64(ev.LatencyNs)/1e6, ev.CacheHit)
			}
		}))

	fmt.Println("cold run:")
	cold, err := exec.Run(ctx, p, g)
	if err != nil {
		log.Fatal(err)
	}
	report(cold)

	// 4. Warm rerun: the DAG is unchanged, so every decompose stage is a
	// cache hit and only the derived-structure stages recompute. Mutating
	// one upstream stage (a new seed on "dec") would invalidate exactly its
	// downstream cone — sp's skeleton changes, so dec2's cache key changes
	// with it — while dec2's siblings keep hitting.
	fmt.Println("warm rerun:")
	warm, err := exec.Run(ctx, p, g)
	if err != nil {
		log.Fatal(err)
	}
	report(warm)
	fmt.Printf("session stats: %+v\n\n", s.Stats())

	// 5. The registry holds one latency histogram per stage under
	// pipeline.stage.<id>.ns — the same instruments /metrics would export.
	fmt.Println("per-stage latency quantiles (both runs):")
	type row struct {
		id            string
		p50, p90, p99 float64
	}
	var rows []row
	for _, sr := range cold.SortedStages() {
		h := reg.Histogram("pipeline.stage." + sr.ID + ".ns").Snapshot()
		rows = append(rows, row{sr.ID,
			h.Quantile(0.5) / 1e6, h.Quantile(0.9) / 1e6, h.Quantile(0.99) / 1e6})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].p99 > rows[j].p99 })
	fmt.Printf("  %-5s %10s %10s %10s\n", "stage", "p50(ms)", "p90(ms)", "p99(ms)")
	for _, r := range rows {
		fmt.Printf("  %-5s %10.2f %10.2f %10.2f\n", r.id, r.p50, r.p90, r.p99)
	}
	fmt.Printf("\npipeline runs: %d, stage runs: %d, stage cache hits: %d\n",
		reg.Counter("pipeline.runs").Value(),
		reg.Counter("pipeline.stage.runs").Value(),
		reg.Counter("pipeline.stage.cachehits").Value())
}

// report prints one execution's per-stage outcomes in deterministic order.
func report(res *netdecomp.PipelineResult) {
	for _, sr := range res.SortedStages() {
		var what string
		switch {
		case sr.Partition != nil:
			what = fmt.Sprintf("%d clusters, %d colors", len(sr.Partition.Clusters), sr.Partition.Colors)
		case sr.AppInput != nil:
			what = fmt.Sprintf("recolored, %d clusters", len(sr.AppInput.Clusters))
		case sr.MIS != nil:
			what = fmt.Sprintf("MIS size %d in %d rounds", sr.MIS.Size, sr.MIS.Rounds)
		case sr.Coloring != nil:
			what = fmt.Sprintf("%d colors in %d rounds", sr.Coloring.NumColors, sr.Coloring.Rounds)
		case sr.Spanner != nil:
			what = fmt.Sprintf("skeleton with %d edges", sr.Spanner.Edges)
		case sr.Cover != nil:
			what = fmt.Sprintf("%d sets, degree %d", len(sr.Cover.Clusters), sr.Cover.Degree)
		}
		fmt.Printf("  %-5s level %d  hit=%-5v  %s\n", sr.ID, sr.Level, sr.CacheHit, what)
	}
	fmt.Printf("  total %.1fms, %d cache hits\n\n", float64(res.ElapsedNs)/1e6, res.CacheHits)
}
