package netdecomp

import (
	"context"

	"netdecomp/internal/apps"
	"netdecomp/internal/decomp"
	"netdecomp/internal/dist"
)

// The unified Decomposer API: one interface, one result type, one
// registry. Every algorithm in the repository is reachable as
//
//	d, err := netdecomp.Get("elkin-neiman/theorem2")
//	p, err := d.Decompose(ctx, g, netdecomp.WithSeed(7), netdecomp.WithK(5))
//	rep := netdecomp.VerifyPartition(g, p)
//
// and every consumer — VerifyPartition, AppInputFromPartition (feeding
// MIS/Coloring/Matching), BuildCover, BuildSpannerFrom — accepts the
// resulting *Partition, whatever algorithm produced it.

// Decomposer is the single entry point every registered algorithm
// implements.
type Decomposer = decomp.Decomposer

// Partition is the unified result of any registered algorithm: clusters
// with colors, completeness, the strong/weak diameter mode, and the
// CONGEST metrics of the producing execution.
type Partition = decomp.Partition

// PartitionCluster is one cluster of a Partition.
type PartitionCluster = decomp.Cluster

// DiameterMode distinguishes strong- from weak-diameter guarantees.
type DiameterMode = decomp.DiameterMode

// The two diameter notions.
const (
	StrongDiameter = decomp.StrongDiameter
	WeakDiameter   = decomp.WeakDiameter
)

// DecomposeOption is a functional option accepted by every Decomposer.
type DecomposeOption = decomp.Option

// DecomposerConfig is the resolved option set a Decomposer receives;
// custom algorithms registered via NewDecomposer read the fields they
// understand and ignore the rest.
type DecomposerConfig = decomp.Config

// RoundStats is the per-round traffic record streamed to observers.
type RoundStats = dist.RoundStats

// Get returns the algorithm registered under name ("elkin-neiman",
// "elkin-neiman/theorem1..3", "elkin-neiman/dist", "linial-saks", "mpx",
// "mpx/dist", "ball-carving", plus anything the application registered).
func Get(name string) (Decomposer, error) { return decomp.Get(name) }

// MustGet is Get for statically known names; it panics on unknown names.
func MustGet(name string) Decomposer { return decomp.MustGet(name) }

// Algorithms returns every registered algorithm name, sorted.
func Algorithms() []string { return decomp.Names() }

// RegisterDecomposer adds a Decomposer to the registry (last registration
// under a name wins). Use decomp.Func-style adapters via NewDecomposer.
func RegisterDecomposer(d Decomposer) { decomp.Register(d) }

// NewDecomposer wraps a plain function as a registrable Decomposer. The
// function receives any read-only graph backend (GraphInterface), which
// *Graph and *GraphView both satisfy.
func NewDecomposer(name string, run func(ctx context.Context, g GraphInterface, cfg DecomposerConfig) (*Partition, error)) Decomposer {
	return decomp.Func{AlgorithmName: name, Run: run}
}

// Functional options, shared by every algorithm (each algorithm reads the
// fields it understands and ignores the rest).

// WithSeed sets the random seed; equal seeds give identical runs.
func WithSeed(seed uint64) DecomposeOption { return decomp.WithSeed(seed) }

// WithK sets the radius parameter (Elkin–Neiman Theorems 1–2,
// Linial–Saks, ball carving).
func WithK(k int) DecomposeOption { return decomp.WithK(k) }

// WithLambda sets the Theorem 3 color budget.
func WithLambda(lambda int) DecomposeOption { return decomp.WithLambda(lambda) }

// WithC sets the confidence parameter of the randomized algorithms.
func WithC(c float64) DecomposeOption { return decomp.WithC(c) }

// WithBeta sets the MPX exponential rate.
func WithBeta(beta float64) DecomposeOption { return decomp.WithBeta(beta) }

// WithForceComplete keeps carving until every vertex is clustered.
func WithForceComplete() DecomposeOption { return decomp.WithForceComplete() }

// WithPhaseBudget overrides the theorem's phase budget.
func WithPhaseBudget(budget int) DecomposeOption { return decomp.WithPhaseBudget(budget) }

// WithExactRadius selects untruncated broadcasts (sequential Elkin–Neiman
// only).
func WithExactRadius() DecomposeOption { return decomp.WithExactRadius() }

// WithEngine executes on the message-passing engine where the algorithm
// has both paths.
func WithEngine() DecomposeOption { return decomp.WithEngine() }

// WithScheduler selects the engine scheduler (and implies WithEngine):
// parallel toggles the goroutine pool, workers caps it (0 = GOMAXPROCS).
func WithScheduler(parallel bool, workers int) DecomposeOption {
	return decomp.WithScheduler(parallel, workers)
}

// WithParallel enables deterministic parallel execution on whichever path
// the algorithm runs — the engine's goroutine-pool scheduler, or the
// receiver-sharded rounds of the sequential simulation — with results
// bit-identical to sequential execution; workers caps the pool
// (0 = GOMAXPROCS).
func WithParallel(workers int) DecomposeOption { return decomp.WithParallel(workers) }

// WithObserver streams per-round traffic statistics to fn as the run
// executes.
func WithObserver(fn func(RoundStats)) DecomposeOption { return decomp.WithObserver(fn) }

// VerifyPartition checks any Partition against its graph with the
// invariants appropriate to its mode: disjoint clusters (covering the
// graph iff Complete), connected induced subgraphs iff the algorithm
// bounds the strong diameter, and a proper supergraph coloring iff the
// algorithm provides one.
func VerifyPartition(g GraphInterface, p *Partition) *VerifyReport { return p.Verify(g) }

// AppInputFromPartition adapts any complete Partition for the
// applications (MIS, Coloring, Matching). Partitions without a proper
// supergraph coloring (MPX) are first-fit recolored.
func AppInputFromPartition(g GraphInterface, p *Partition) (AppInput, error) {
	return apps.FromPartition(g, p)
}

// PartitionFromDecomposition converts a legacy core Decomposition into the
// unified Partition (shims and migration aid).
func PartitionFromDecomposition(dec *Decomposition) *Partition { return decomp.FromCore(dec) }
