package netdecomp

import (
	"context"

	"netdecomp/internal/decomp"
	"netdecomp/internal/session"
	"netdecomp/internal/spanner"
)

// The Plan/Session execution API: compile a configuration once, execute it
// many times, and serve repeated work from a deduplicating cache.
//
//	pl, _ := netdecomp.Compile("elkin-neiman", netdecomp.WithForceComplete())
//	s := netdecomp.NewSession()
//	defer s.Close()
//	p, err := s.Run(ctx, pl.WithSeed(7), g)   // cold: executes
//	p2, _ := s.Run(ctx, pl.WithSeed(7), g)    // warm: served from cache
//
// Results are defensive clones keyed on (GraphFingerprint, PlanKey, seed);
// see internal/session for the full semantics.

// Plan is the immutable compiled form of (algorithm, resolved options):
// validated once by Compile, executed any number of times with Run, and
// identified by the stable PlanKey digest the session cache keys on.
type Plan = decomp.Plan

// Compile resolves an algorithm name and folds the options into an
// immutable, validated Plan. Derive seed-sweep copies with Plan.WithSeed.
func Compile(name string, opts ...DecomposeOption) (*Plan, error) {
	return decomp.Compile(name, opts...)
}

// CompileDecomposer compiles a Plan for a Decomposer held directly (one
// not in, or shadowed in, the registry).
func CompileDecomposer(d Decomposer, opts ...DecomposeOption) (*Plan, error) {
	return decomp.CompileDecomposer(d, opts...)
}

// Session is the concurrent plan-execution service: a bounded worker
// pool with singleflight deduplication of identical in-flight jobs and an
// LRU cache of completed Partitions (served as defensive clones).
type Session = session.Session

// SessionOption configures NewSession.
type SessionOption = session.Option

// SessionStats is the hit/miss/dedup counter snapshot from Session.Stats.
type SessionStats = session.Stats

// SessionJob is the handle of one Session.Submit.
type SessionJob = session.Job

// SessionKey is the (graph fingerprint, plan key, seed) cache key triple.
type SessionKey = session.Key

// SessionRequest is one entry of a Session.SubmitAll batch.
type SessionRequest = session.Request

// SessionResult is one streamed Session.SubmitAll outcome.
type SessionResult = session.Result

// NewSession starts a Session (remember to Close it).
func NewSession(opts ...SessionOption) *Session { return session.New(opts...) }

// WithSessionWorkers bounds the session worker pool (default GOMAXPROCS).
func WithSessionWorkers(n int) SessionOption { return session.WithWorkers(n) }

// WithSessionCacheSize bounds the completed-result LRU (default 256
// entries; 0 disables caching).
func WithSessionCacheSize(n int) SessionOption { return session.WithCacheSize(n) }

// RunPlan executes a compiled plan directly, without a session (no cache,
// no dedup): Compile + RunPlan is exactly equivalent to the one-shot
// Decompose entry points.
func RunPlan(ctx context.Context, pl *Plan, g GraphInterface) (*Partition, error) {
	return pl.Run(ctx, g)
}

// BuildSpannerFromPlan decomposes g by the compiled plan (which must
// force completion) and builds the skeleton spanner from the result. A
// non-nil Session serves repeated builds of the same (graph, plan, seed)
// from its decomposition cache; repeated cover builds get the same via
// CoverOptions.Session.
func BuildSpannerFromPlan(ctx context.Context, g GraphInterface, s *Session, pl *Plan) (*Spanner, error) {
	return spanner.BuildFromPlan(ctx, g, s, pl)
}
