package netdecomp_test

import (
	"testing"

	"netdecomp"
)

// TestFacadeEndToEnd exercises the whole public surface the way the README
// quickstart does: build a graph, decompose it, verify it, and run the
// three applications.
func TestFacadeEndToEnd(t *testing.T) {
	g := netdecomp.GnpConnected(netdecomp.NewRNG(1), 400, 0.01)
	dec, err := netdecomp.Decompose(g, netdecomp.Options{K: 5, C: 8, Seed: 7, ForceComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Complete {
		t.Fatal("ForceComplete run incomplete")
	}
	rep := netdecomp.Verify(g, dec)
	if !rep.Valid() {
		t.Fatalf("verification failed: %v", rep.Err())
	}
	if rep.MaxStrongDiameter > 2*dec.K-2 && dec.TruncationEvents == 0 {
		t.Fatalf("diameter %d over bound without truncation", rep.MaxStrongDiameter)
	}

	in, err := netdecomp.AppInputFromDecomposition(dec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := netdecomp.MIS(g, in); err != nil {
		t.Fatal(err)
	}
	if _, err := netdecomp.Coloring(g, in); err != nil {
		t.Fatal(err)
	}
	if _, err := netdecomp.Matching(g, in); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeDistributed checks the message-passing path through the facade.
func TestFacadeDistributed(t *testing.T) {
	g := netdecomp.Grid(12, 12)
	o := netdecomp.Options{K: 4, C: 8, Seed: 3}
	a, err := netdecomp.Decompose(g, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := netdecomp.DecomposeDistributed(g, o, netdecomp.EngineOptions{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Colors != b.Colors || len(a.Clusters) != len(b.Clusters) {
		t.Fatalf("facade paths disagree: %v vs %v", a, b)
	}
}

// TestFacadeBaselines checks the baseline re-exports.
func TestFacadeBaselines(t *testing.T) {
	g := netdecomp.RingOfCliques(8, 6)
	ls, err := netdecomp.LinialSaks(g, netdecomp.LSOptions{K: 4, Seed: 1, ForceComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ls.Complete {
		t.Fatal("LS incomplete")
	}
	mpx, err := netdecomp.MPX(g, netdecomp.MPXOptions{Beta: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mpx.DisconnectedClusters(g) != 0 {
		t.Fatal("MPX produced disconnected clusters")
	}
	if _, err := netdecomp.LubyMIS(g, 5); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeBounds checks the bound helpers.
func TestFacadeBounds(t *testing.T) {
	o := netdecomp.Options{K: 4, C: 8}
	d, err := netdecomp.TheoremDiameterBound(1000, o)
	if err != nil || d != 6 {
		t.Fatalf("diameter bound %d err %v", d, err)
	}
	if _, err := netdecomp.TheoremColorBound(1000, o); err != nil {
		t.Fatal(err)
	}
	if _, err := netdecomp.TheoremRoundBound(1000, o); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeGraphConstruction checks the builder and edge-list paths.
func TestFacadeGraphConstruction(t *testing.T) {
	b := netdecomp.NewGraphBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("builder graph wrong: %v", g)
	}
	g2 := netdecomp.FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	if g2.M() != g.M() {
		t.Fatal("FromEdges disagrees with builder")
	}
	if tr := netdecomp.RandomTree(netdecomp.NewRNG(2), 50); tr.M() != 49 {
		t.Fatal("RandomTree wrong")
	}
	if gp := netdecomp.Gnp(netdecomp.NewRNG(3), 50, 0.1); gp.N() != 50 {
		t.Fatal("Gnp wrong")
	}
}
